// The first genuinely multi-threaded code in the repo: a deliberately tiny
// hammer over the two shared-state hot spots the annotated locking layer
// protects — Pager accounting and PhysicalPartRegistry acquire/release —
// plus the WorkloadMonitor's decayed counters and the ObjectStore's maps.
// Run it under -fsanitize=thread (cmake -DPATHIX_SANITIZE=thread): TSan is
// the dynamic backstop for what Clang's -Wthread-safety proves statically.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/generator.h"
#include "datagen/paper_schema.h"
#include "exec/database.h"
#include "index/part_registry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "online/workload_monitor.h"
#include "storage/pager.h"

namespace pathix {
namespace {

constexpr int kThreads = 4;

void RunInParallel(int threads, const std::function<void(int)>& body) {
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int t = 0; t < threads; ++t) pool.emplace_back(body, t);
  for (std::thread& th : pool) th.join();
}

TEST(ConcurrentSmokeTest, PagerAccountingFromManyThreads) {
  constexpr std::uint64_t kOpsPerThread = 5000;
  Pager pager(4096);
  RunInParallel(kThreads, [&pager](int t) {
    for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
      const PageId page = pager.Allocate();
      pager.NoteWrite(page);
      pager.NoteRead(page);
      if (i % 16 == 0) pager.NoteReads(2);
      (void)pager.stats();  // concurrent snapshot reads
      (void)t;
    }
  });
  const AccessStats stats = pager.stats();
  EXPECT_EQ(pager.allocated_pages(), kThreads * kOpsPerThread);
  EXPECT_EQ(stats.writes, kThreads * kOpsPerThread);
  EXPECT_EQ(stats.reads,
            kThreads * (kOpsPerThread + 2 * ((kOpsPerThread + 15) / 16)));
  EXPECT_EQ(stats.buffer_hits, 0u);
}

TEST(ConcurrentSmokeTest, PagerBufferPoolUnderContention) {
  constexpr std::uint64_t kOpsPerThread = 5000;
  Pager pager(4096);
  pager.EnableBuffer(8);
  // All threads hammer the same tiny page set: every access is either a
  // counted read or a buffer hit, never lost.
  std::vector<PageId> pages;
  pages.reserve(4);
  for (int i = 0; i < 4; ++i) pages.push_back(pager.Allocate());
  RunInParallel(kThreads, [&pager, &pages](int t) {
    for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
      pager.NoteRead(pages[(t + i) % pages.size()]);
    }
  });
  const AccessStats stats = pager.stats();
  EXPECT_EQ(stats.reads + stats.buffer_hits, kThreads * kOpsPerThread);
  EXPECT_GT(stats.buffer_hits, 0u);
}

TEST(ConcurrentSmokeTest, BufferPoolHammerReconcilesExactly) {
  // Four threads drive a sharded pool (512 frames -> 8 latched shards)
  // through the full frame life cycle at once: hot hits, cold misses that
  // force CLOCK sweeps, dirty frames, pins held across cross-traffic, and
  // a final flush. Accounting must reconcile exactly — a lost or
  // double-counted touch anywhere in the latched fast path shows up here.
  constexpr std::uint64_t kOpsPerThread = 4000;
  constexpr PageId kPageSpan = 2048;
  Pager pager(4096);
  pager.EnableBuffer(512);
  std::atomic<std::uint64_t> read_touches{0};
  std::atomic<std::uint64_t> write_touches{0};
  RunInParallel(kThreads, [&](int t) {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
      // Skewed page choice: a small hot set yields hits, the wide tail
      // forces evictions through every shard.
      const PageId page = static_cast<PageId>(
          (i % 8 == 0) ? (i * 37 + static_cast<std::uint64_t>(t) * 911) %
                             kPageSpan
                       : (i * 13 + static_cast<std::uint64_t>(t)) % 64);
      if (i % 5 == 4) {
        pager.NoteWrite(page);
        ++writes;
      } else if (i % 7 == 3) {
        PageGuard guard = pager.PinRead(page);
        ++reads;
        pager.NoteRead((page + 1) % kPageSpan);  // traffic while pinned
        ++reads;
        guard.Release();
      } else {
        pager.NoteRead(page);
        ++reads;
      }
      if (i % 512 == 0) (void)pager.stats();  // concurrent snapshots
    }
    read_touches += reads;
    write_touches += writes;
  });
  pager.EnableBuffer(0);  // surface every remaining dirty frame
  const AccessStats stats = pager.stats();
  const BufferPoolStats pool = pager.buffer_pool().GetStats();
  // Honest read accounting: every touch is exactly one hit or one charged
  // read, and the pager's view agrees with the pool's.
  EXPECT_EQ(stats.reads + stats.buffer_hits, read_touches.load());
  EXPECT_EQ(stats.buffer_hits, pool.read_hits);
  EXPECT_EQ(stats.reads, pool.read_misses);
  EXPECT_EQ(pool.read_hits + pool.read_misses, read_touches.load());
  EXPECT_EQ(pool.write_hits + pool.write_misses, write_touches.load());
  // Write-back collapses repeats but never invents writes: after the
  // flush, total charged writes cannot exceed the write touches.
  EXPECT_LE(stats.writes, write_touches.load());
  EXPECT_GT(stats.writes, 0u);
  EXPECT_GT(stats.buffer_hits, 0u);
  EXPECT_GT(pool.evictions, 0u);
  EXPECT_GT(pool.writebacks, 0u);
}

/// A populated Example 5.1 database (small) whose store backs concurrent
/// registry builds.
struct SmokeInstance {
  SmokeInstance() : setup(MakeExample51Setup()), db(setup.schema, {}) {
    CheckOk(db.RegisterPath("people", setup.path));
    PathDataGenerator gen(1234);
    gen.Populate(&db, {&setup.path},
                 {
                     {setup.division, 8, 4, 1.0},
                     {setup.company, 8, 0, 2.0},
                     {setup.vehicle, 40, 0, 2.0},
                     {setup.person, 200, 0, 1.0},
                 });
  }

  PaperSetup setup;
  SimDatabase db;
};

TEST(ConcurrentSmokeTest, RegistryAcquireReleaseFromManyThreads) {
  constexpr int kRounds = 50;
  SmokeInstance inst;
  PhysicalPartRegistry registry;
  const IndexedSubpath shared{{1, 4}, IndexOrg::kNIX};
  const StructuralKey shared_key =
      StructuralKey::ForSubpath(inst.setup.path, 1, 4, IndexOrg::kNIX);
  // Per-thread distinct parts: each thread also churns its own single-level
  // MX part so builds and releases interleave with the shared key's.
  const IndexOrg own_orgs[kThreads] = {IndexOrg::kMX, IndexOrg::kNIX,
                                       IndexOrg::kMIX, IndexOrg::kMX};
  RunInParallel(kThreads, [&](int t) {
    const IndexedSubpath own{{t % 2 + 1, t % 2 + 1}, own_orgs[t]};
    for (int i = 0; i < kRounds; ++i) {
      auto a = registry.Acquire(&inst.db.pager(), inst.setup.schema,
                                inst.setup.path, shared, inst.db.store());
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_NE(a.value()->index, nullptr);
      auto b = registry.Acquire(&inst.db.pager(), inst.setup.schema,
                                inst.setup.path, own, inst.db.store());
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      // Concurrent holders of the same key share one structure.
      auto again = registry.Acquire(&inst.db.pager(), inst.setup.schema,
                                    inst.setup.path, shared, inst.db.store());
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(a.value().get(), again.value().get());
      (void)registry.live_parts();
      (void)registry.cumulative_build_io();
    }
  });
  // Everything was released on scope exit; the registry holds only weak
  // references, and every build was accounted.
  EXPECT_EQ(registry.use_count(shared_key), 0);
  EXPECT_EQ(registry.live_parts(), 0u);
  EXPECT_GT(registry.parts_built(), 0u);
  EXPECT_GT(registry.cumulative_build_io().total(), 0u);
}

TEST(ConcurrentSmokeTest, RegistryBuildsSharedKeyOnceWhileHeld) {
  SmokeInstance inst;
  PhysicalPartRegistry registry;
  const IndexedSubpath shared{{1, 4}, IndexOrg::kNIX};
  // All threads race to acquire the same key and keep it alive until after
  // the join: exactly one build may happen.
  std::vector<std::shared_ptr<PhysicalPart>> held(kThreads);
  RunInParallel(kThreads, [&](int t) {
    auto part = registry.Acquire(&inst.db.pager(), inst.setup.schema,
                                 inst.setup.path, shared, inst.db.store());
    ASSERT_TRUE(part.ok());
    held[static_cast<std::size_t>(t)] = std::move(part).value();
  });
  EXPECT_EQ(registry.parts_built(), 1u);
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(held[0].get(), held[t].get());
  held.clear();
  EXPECT_EQ(registry.live_parts(), 0u);
}

TEST(ConcurrentSmokeTest, WorkloadMonitorObserveAndEstimate) {
  constexpr std::uint64_t kOpsPerThread = 2000;
  WorkloadMonitor monitor(/*half_life_ops=*/256);
  RunInParallel(kThreads, [&monitor](int t) {
    for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
      switch (i % 3) {
        case 0:
          monitor.Observe(DbOpKind::kQuery, static_cast<ClassId>(t));
          break;
        case 1:
          monitor.Observe(DbOpKind::kInsert, static_cast<ClassId>(t));
          break;
        default:
          monitor.Observe(DbOpKind::kDelete, static_cast<ClassId>(t));
          break;
      }
      if (i % 64 == 0) {
        (void)monitor.EstimatedLoad();
        (void)monitor.MeasuredNaiveQueryPagesPerOp();
      }
    }
  });
  EXPECT_EQ(monitor.ops_observed(), kThreads * kOpsPerThread);
  EXPECT_GT(monitor.DecayedTotal(), 0.0);
}

TEST(ConcurrentSmokeTest, MetricsRegistryFromManyThreads) {
  constexpr std::uint64_t kOpsPerThread = 4000;
  obs::MetricsRegistry registry;
  RunInParallel(kThreads, [&registry](int t) {
    // Handles resolve through the registry map concurrently; updates go
    // through the per-metric leaf mutexes. Every count must land.
    obs::Counter& shared = registry.CounterAt("hammer_total");
    obs::Counter& own =
        registry.CounterAt("hammer_total",
                           {{"thread", std::to_string(t)}});
    obs::Histogram& lat = registry.HistogramAt("hammer_latency_us");
    obs::Gauge& gauge = registry.GaugeAt("hammer_gauge");
    for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
      shared.Increment();
      own.Increment();
      lat.Observe(static_cast<double>(i % 1000));
      gauge.Set(static_cast<double>(i));
      if (i % 256 == 0) (void)registry.Snapshot();  // concurrent exports
    }
  });
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Value("hammer_total"),
            static_cast<double>(kThreads * kOpsPerThread));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.Value("hammer_total", {{"thread", std::to_string(t)}}),
              static_cast<double>(kOpsPerThread));
  }
  const obs::MetricSample* lat = snap.Find("hammer_latency_us", {});
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->histogram.count, kThreads * kOpsPerThread);
}

TEST(ConcurrentSmokeTest, TracerSpansFromManyThreads) {
  constexpr int kSpansPerThread = 500;
  obs::Tracer tracer;
  tracer.SetEnabled(true);
  RunInParallel(kThreads, [&tracer](int t) {
    for (int i = 0; i < kSpansPerThread; ++i) {
      obs::ObsSpan outer(&tracer, "outer", "test");
      outer.AddArg("i", static_cast<double>(i));
      obs::ObsSpan inner(&tracer, "inner", "test");
      (void)t;
      if (i % 128 == 0) (void)tracer.Snapshot();
    }
  });
  tracer.SetEnabled(false);
  const std::vector<obs::TraceEvent> events = tracer.Snapshot();
  EXPECT_EQ(events.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread * 4));
  // Per thread, the interleaved stream must still be a valid span stack:
  // every E matches the name of the B on top of its thread's stack.
  std::map<int, std::vector<const obs::TraceEvent*>> stacks;
  for (const obs::TraceEvent& e : events) {
    std::vector<const obs::TraceEvent*>& stack = stacks[e.tid];
    if (e.phase == 'B') {
      stack.push_back(&e);
      continue;
    }
    ASSERT_EQ(e.phase, 'E');
    ASSERT_FALSE(stack.empty()) << "unmatched end on tid " << e.tid;
    EXPECT_EQ(stack.back()->name, e.name);
    stack.pop_back();
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
}

TEST(ConcurrentSmokeTest, ObjectStoreReadersAlongsideWriter) {
  SmokeInstance inst;
  ObjectStore& store = inst.db.store();
  const ClassId person = inst.setup.person;
  const std::size_t before = store.LiveCount(person);
  std::thread writer([&inst, person] {
    for (int i = 0; i < 500; ++i) {
      inst.db.Insert(person, {{"name", {Value::Str("extra")}}});
    }
  });
  RunInParallel(kThreads - 1, [&store, person](int) {
    for (int i = 0; i < 500; ++i) {
      (void)store.PeekAll(person);
      (void)store.LiveCount(person);
      (void)store.SegmentPages(person);
      (void)store.live_objects();
    }
  });
  writer.join();
  EXPECT_EQ(store.LiveCount(person), before + 500);
}

}  // namespace
}  // namespace pathix
