#include "common/math.h"

#include <gtest/gtest.h>

namespace pathix {
namespace {

TEST(YaoNpaTest, DegenerateInputsReturnZero) {
  EXPECT_EQ(YaoNpa(0, 100, 10), 0);
  EXPECT_EQ(YaoNpa(-1, 100, 10), 0);
  EXPECT_EQ(YaoNpa(5, 0, 10), 0);
  EXPECT_EQ(YaoNpa(5, 100, 0), 0);
}

TEST(YaoNpaTest, SinglePageAlwaysCostsOne) {
  EXPECT_EQ(YaoNpa(1, 100, 1), 1);
  EXPECT_EQ(YaoNpa(50, 100, 1), 1);
}

TEST(YaoNpaTest, SelectingEverythingTouchesAllPages) {
  EXPECT_EQ(YaoNpa(100, 100, 10), 10);
  EXPECT_EQ(YaoNpa(150, 100, 10), 10);  // oversaturated
}

TEST(YaoNpaTest, OneOfManyTouchesOnePage) {
  EXPECT_NEAR(YaoNpa(1, 1000, 100), 1.0, 1e-9);
}

TEST(YaoNpaTest, MatchesClosedFormSmallCase) {
  // n=4 records on m=2 pages (2 per page), t=2:
  // npa = 2 * (1 - C(2,2)/C(4,2)) = 2 * (1 - 1/6) = 5/3.
  EXPECT_NEAR(YaoNpa(2, 4, 2), 5.0 / 3.0, 1e-9);
}

TEST(YaoNpaTest, MonotoneInT) {
  double prev = 0;
  for (int t = 1; t <= 50; ++t) {
    const double v = YaoNpa(t, 1000, 50);
    EXPECT_GE(v, prev) << "t=" << t;
    prev = v;
  }
}

TEST(YaoNpaTest, BoundedByTAndM) {
  for (int t = 1; t <= 200; t += 13) {
    const double v = YaoNpa(t, 1000, 50);
    EXPECT_LE(v, 50.0);
    EXPECT_LE(v, static_cast<double>(t));
    EXPECT_GT(v, 0.0);
  }
}

TEST(YaoNpaTest, FractionalTInterpolates) {
  const double lo = YaoNpa(3, 1000, 50);
  const double hi = YaoNpa(4, 1000, 50);
  const double mid = YaoNpa(3.5, 1000, 50);
  EXPECT_GT(mid, lo);
  EXPECT_LT(mid, hi);
  EXPECT_NEAR(mid, (lo + hi) / 2, 1e-9);
}

TEST(CeilDivTest, Basics) {
  EXPECT_EQ(CeilDiv(10, 5), 2);
  EXPECT_EQ(CeilDiv(11, 5), 3);
}

TEST(CeilDivTest, ZeroNumerator) {
  EXPECT_EQ(CeilDiv(0, 5), 0);
  EXPECT_EQ(CeilDiv(0, 0.5), 0);
  EXPECT_EQ(CeilDiv(-3, 5), 0);  // negative byte counts clamp to nothing
}

TEST(CeilDivTest, NonIntegralInputs) {
  EXPECT_EQ(CeilDiv(10.5, 5), 3);
  EXPECT_EQ(CeilDiv(1.0, 0.3), 4);
  EXPECT_EQ(CeilDiv(7.5, 2.5), 3);
  EXPECT_EQ(CeilDiv(0.1, 100), 1);  // any positive remainder costs a unit
}

TEST(CeilDivTest, NonPositiveDivisorIsACallerBug) {
  // A divisor <= 0 trips PATHIX_DCHECK in debug builds. In release builds
  // it must NOT silently report 0 units (a 0-page B-tree); it degrades to
  // "one record per unit", the most conservative positive answer.
#ifdef NDEBUG
  EXPECT_EQ(CeilDiv(5, 0), 5);
  EXPECT_EQ(CeilDiv(5, -2), 5);
  EXPECT_EQ(CeilDiv(2.5, 0), 3);
  EXPECT_EQ(CeilDiv(0, 0), 0);
#else
  EXPECT_DEATH(CeilDiv(5, 0), "");
  EXPECT_DEATH(CeilDiv(5, -2), "");
#endif
}

TEST(CeilPosTest, ClampsNegative) {
  EXPECT_EQ(CeilPos(-3.2), 0);
  EXPECT_EQ(CeilPos(3.2), 4);
}

}  // namespace
}  // namespace pathix
