// Concurrent query-vs-reconfigure stress: worker threads run queries and
// updates against one SimDatabase while configuration epochs are swapped
// under them — the serving engine's core claim. Asserts the no-lost-ops
// invariant (every op accounted exactly once on the store), that every
// query finds a published configuration (in-flight queries finish on the
// old epoch; there is never a window with none), that every swap completed
// during active traffic, and that part refcounts return when the indexes
// drop. Deliberately NOT labeled `slow`: the TSan CI job (ctest -LE slow)
// must pick this up — it is the dynamic race backstop for the epoch-swap
// and latching protocols.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "datagen/generator.h"
#include "datagen/paper_schema.h"
#include "serve/serve_driver.h"

namespace pathix {
namespace {

constexpr int kWorkers = 4;

TEST(ServeStressTest, QueriesAndUpdatesAcrossEpochSwaps) {
  constexpr int kOpsPerWorker = 400;
  constexpr int kSwaps = 30;

  PaperSetup setup = MakeExample51Setup();
  SimDatabase db(setup.schema, PhysicalParams{});
  CheckOk(db.RegisterPath("people", setup.path));
  PathDataGenerator gen(99);
  gen.Populate(&db, {&setup.path},
               {
                   {setup.division, 8, 4, 1.0},
                   {setup.company, 8, 0, 2.0},
                   {setup.vehicle, 30, 0, 2.0},
                   {setup.person, 150, 0, 1.0},
               });
  CheckOk(db.ConfigureIndexes(
      "people", IndexConfiguration({{Subpath{1, 4}, IndexOrg::kNIX}})));

  const std::vector<Oid> vehicles = db.store().PeekAll(setup.vehicle);
  ASSERT_FALSE(vehicles.empty());
  const std::size_t live_before = db.store().LiveCount(setup.person);
  const double epochs_before =
      db.metrics().CounterAt("pathix_db_config_epochs_total").Value();

  // The reconfigurer: alternates between the whole-path NIX and the
  // paper's split while the workers keep serving. Every swap must find the
  // old epoch still serving and leave the new one published.
  std::atomic<int> swaps_done{0};
  std::thread reconfigurer([&] {
    const IndexConfiguration whole({{Subpath{1, 4}, IndexOrg::kNIX}});
    const IndexConfiguration split({{Subpath{1, 2}, IndexOrg::kNIX},
                                    {Subpath{3, 4}, IndexOrg::kMX}});
    for (int i = 0; i < kSwaps; ++i) {
      CheckOk(db.ReconfigureIndexes(i % 2 == 0 ? split : whole));
      swaps_done.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Workers: 2 queries : 1 insert : 1 delete. Each worker deletes only
  // oids it inserted itself, so every delete must succeed — the accounting
  // below is exact, not statistical.
  std::vector<std::uint64_t> inserted(kWorkers);
  std::vector<std::uint64_t> deleted(kWorkers);
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      std::vector<Oid> own;
      for (int i = 0; i < kOpsPerWorker; ++i) {
        switch (i % 4) {
          case 0:
          case 1: {
            const Key key = Key::FromString("v" + std::to_string(i % 4));
            const Result<SimDatabase::QueryOutcome> r =
                db.QueryAny("people", key, setup.person);
            // A published configuration must always be found: epoch swaps
            // never leave a queryable gap (and with one installed, QueryAny
            // routes indexed, never naive).
            ASSERT_TRUE(r.ok()) << r.status().ToString();
            EXPECT_FALSE(r.value().naive);
            break;
          }
          case 2: {
            const Oid v =
                vehicles[static_cast<std::size_t>(w + i) % vehicles.size()];
            own.push_back(db.Insert(setup.person, {{"owns", {Value::Ref(v)}}}));
            ++inserted[static_cast<std::size_t>(w)];
            break;
          }
          default: {
            if (own.empty()) break;
            const Oid victim = own.back();
            own.pop_back();
            CheckOk(db.Delete(victim));
            ++deleted[static_cast<std::size_t>(w)];
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  reconfigurer.join();

  // No lost or doubled ops: the store's live count reconciles exactly
  // against the per-worker tallies.
  std::uint64_t total_inserted = 0;
  std::uint64_t total_deleted = 0;
  for (int w = 0; w < kWorkers; ++w) {
    total_inserted += inserted[static_cast<std::size_t>(w)];
    total_deleted += deleted[static_cast<std::size_t>(w)];
  }
  EXPECT_EQ(db.store().LiveCount(setup.person),
            live_before + total_inserted - total_deleted);

  // Every swap published exactly one epoch, all during active traffic.
  EXPECT_EQ(swaps_done.load(), kSwaps);
  const double epochs_after =
      db.metrics().CounterAt("pathix_db_config_epochs_total").Value();
  EXPECT_EQ(epochs_after - epochs_before, static_cast<double>(kSwaps));

  // The surviving configuration is internally consistent with the store.
  CheckOk(db.ValidateIndexesDeep());

  // Refcounts return: dropping the final epoch releases every part (old
  // epochs' parts were already released when their last query finished).
  db.DropIndexes("people");
  EXPECT_EQ(db.registry().live_parts(), 0u);
}

TEST(ServeStressTest, ServeDriverCommitsEpochSwapsMidPhase) {
  // The full serving stack: ServeDriver workers replay a mix-flipping
  // trace while the online controller (riding the workers' own Notify
  // callbacks) installs and re-solves mid-phase.
  constexpr const char* kSpec = R"(
class Submission 80000 8000 1
class Forum      400 400 1

ref Submission forum Forum
attr Forum name string

path Submission forum name
orgs MX MIX NIX NONE

populate Submission 1200 0 1.0
populate Forum      40 40 1.0
trace_seed 7

phase search 2500
mix Submission 0.9 0.06 0.04

phase ingest 2500
mix Submission 0.04 0.58 0.38
)";
  Result<TraceSpec> spec = ParseTraceSpec(kSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const TraceSpec& s = spec.value();

  SimDatabase db(s.schema, s.catalog.params());
  ServeDriver driver(&db, s, ServeOptions{kWorkers});
  driver.Populate();

  ControllerOptions copts;
  copts.orgs = s.options.orgs;
  copts.physical_params = s.catalog.params();
  ReconfigurationController controller(&db, s.paths.front().path, copts,
                                       s.paths.front().id);
  db.SetObserver(&controller);

  std::uint64_t epoch_swaps = 0;
  for (std::size_t i = 0; i < s.phases.size(); ++i) {
    const ServePhaseReport r = driver.RunPhase(i, &controller);
    // The no-lost-ops invariant again, through the driver's merged report.
    std::uint64_t executed = r.phase.insert_ops + r.phase.delete_ops +
                             r.phase.noop_ops;
    for (const auto& [id, n] : r.phase.query_ops) executed += n;
    for (const auto& [id, n] : r.phase.naive_query_ops) executed += n;
    EXPECT_EQ(executed, r.phase.ops) << s.phases[i].name;
    epoch_swaps += r.epoch_swaps;
  }
  db.SetObserver(nullptr);
  CheckOk(controller.status());

  // The controller committed at least its first install while the workers
  // were replaying — an epoch swap under live multi-threaded traffic.
  EXPECT_GE(epoch_swaps, 1u);
  EXPECT_TRUE(db.has_indexes(s.paths.front().id));
  CheckOk(db.ValidateIndexesDeep());
}

TEST(ServeStressTest, BufferedServingReconcilesUnderFourWorkers) {
  // The full serving stack again, now through a deliberately small buffer
  // pool (evictions guaranteed): four workers replay both phases with the
  // controller live, and the pager's view must reconcile exactly with the
  // pool's — every buffer hit the workers were credited is a read hit the
  // pool recorded, with no op lost along the way. This is the TSan job's
  // end-to-end pass over the latched buffered fast path.
  constexpr const char* kSpec = R"(
class Submission 80000 8000 1
class Forum      400 400 1

ref Submission forum Forum
attr Forum name string

path Submission forum name
orgs MX MIX NIX NONE

populate Submission 1200 0 1.0
populate Forum      40 40 1.0
trace_seed 11

phase search 2500
mix Submission 0.9 0.06 0.04

phase ingest 2500
mix Submission 0.04 0.58 0.38
)";
  Result<TraceSpec> spec = ParseTraceSpec(kSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const TraceSpec& s = spec.value();

  SimDatabase db(s.schema, s.catalog.params());
  ServeDriver driver(&db, s, ServeOptions{kWorkers});
  driver.Populate();
  // A handful of frames, far below the working set: CLOCK must evict (and
  // write back dirty slot pages) while all four workers are serving.
  db.pager().EnableBuffer(8);

  ControllerOptions copts;
  copts.orgs = s.options.orgs;
  copts.physical_params = s.catalog.params();
  ReconfigurationController controller(&db, s.paths.front().path, copts,
                                       s.paths.front().id);
  db.SetObserver(&controller);

  for (std::size_t i = 0; i < s.phases.size(); ++i) {
    const ServePhaseReport r = driver.RunPhase(i, &controller);
    std::uint64_t executed = r.phase.insert_ops + r.phase.delete_ops +
                             r.phase.noop_ops;
    for (const auto& [id, n] : r.phase.query_ops) executed += n;
    for (const auto& [id, n] : r.phase.naive_query_ops) executed += n;
    // Zero lost ops, buffered exactly as unbuffered.
    EXPECT_EQ(executed, r.phase.ops) << s.phases[i].name;
  }
  db.SetObserver(nullptr);
  CheckOk(controller.status());

  const AccessStats stats = db.pager().stats();
  const BufferPoolStats pool = db.pager().buffer_pool().GetStats();
  // Exact hit accounting: a buffer hit is credited if and only if the pool
  // recorded a read hit — the charge never detaches from the frame table.
  EXPECT_EQ(stats.buffer_hits, pool.read_hits);
  EXPECT_GT(stats.buffer_hits, 0u);
  // Every pool read miss was charged as a real read (bulk scans bypass the
  // pool, so the pager may have charged more reads — never fewer).
  EXPECT_GE(stats.reads, pool.read_misses);
  EXPECT_GT(pool.read_misses, 0u);
  // The undersized pool actually cycled, and only dirty frames wrote back.
  EXPECT_GT(pool.evictions, 0u);
  EXPECT_LE(pool.writebacks, pool.evictions);
  EXPECT_LE(db.pager().buffer_pool().ResidentPages(), 8u);

  // Disabling flushes every remaining dirty frame into the write counters
  // and drains the pool completely.
  const std::uint64_t writes_before = stats.writes;
  db.pager().EnableBuffer(0);
  EXPECT_EQ(db.pager().buffer_pool().ResidentPages(), 0u);
  EXPECT_GE(db.pager().stats().writes, writes_before);
  CheckOk(db.ValidateIndexesDeep());
}

}  // namespace
}  // namespace pathix
