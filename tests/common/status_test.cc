#include "common/status.h"

#include <gtest/gtest.h>

namespace pathix {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad path");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad path");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad path");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Status FailingHelper() { return Status::OutOfRange("boom"); }
Status Propagating() {
  PATHIX_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Propagating().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace pathix
