#include "core/advisor.h"

#include <gtest/gtest.h>

#include "datagen/paper_schema.h"

namespace pathix {
namespace {

// ------------------------------------------------------- Example 5.1 (E7)

class Example51Test : public ::testing::Test {
 protected:
  void SetUp() override {
    setup_ = MakeExample51Setup();
    Result<Recommendation> rec = AdviseIndexConfiguration(
        setup_.schema, setup_.path, setup_.catalog, setup_.load);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    rec_ = std::make_unique<Recommendation>(std::move(rec).value());
  }

  PaperSetup setup_;
  std::unique_ptr<Recommendation> rec_;
};

TEST_F(Example51Test, OptimalConfigurationMatchesThePaper) {
  // The paper's Opt_Ind_Con result:
  // {(Per.owns.man, NIX), (Comp.divs.name, MX)}.
  ASSERT_EQ(rec_->result.config.degree(), 2);
  EXPECT_EQ(rec_->result.config.parts()[0],
            (IndexedSubpath{Subpath{1, 2}, IndexOrg::kNIX}));
  EXPECT_EQ(rec_->result.config.parts()[1],
            (IndexedSubpath{Subpath{3, 4}, IndexOrg::kMX}));
  EXPECT_EQ(rec_->result.config.ToString(setup_.schema, setup_.path),
            "{(Person.owns.man, NIX), (Company.divs.name, MX)}");
}

TEST_F(Example51Test, WholePathSingleIndexIsWorseAndNIXCompetitive) {
  // Paper: a whole-path NIX costs 42.84 (the best single index) vs 16.03
  // for the configuration — a factor 2.7. Our physical parameters differ
  // from the unavailable report [7]: the whole-path row is a NIX/MIX
  // near-tie (within a few percent; EXPERIMENTS.md), and splitting
  // improves by a clear margin either way.
  const Subpath whole{1, 4};
  const double nix = rec_->matrix.Cost(whole, IndexOrg::kNIX);
  // NIX lands within 15% of the whole-path winner; which of NIX/MIX is
  // first depends on the physical constants of [7].
  EXPECT_LE(nix, rec_->whole_path_cost * 1.15);
  EXPECT_GT(rec_->improvement_factor, 1.3);
  EXPECT_LT(rec_->result.cost, rec_->whole_path_cost);
}

TEST_F(Example51Test, BranchAndBoundExploresFewerThanExhaustive) {
  // Paper: 4 configurations explored instead of all 8.
  EXPECT_LT(rec_->result.evaluated, 8);
  EXPECT_GT(rec_->result.pruned, 0);
  AdvisorOptions opts;
  opts.use_branch_and_bound = false;
  const Recommendation ex =
      AdviseIndexConfiguration(setup_.schema, setup_.path, setup_.catalog,
                               setup_.load, opts)
          .value();
  EXPECT_EQ(ex.result.evaluated, 8);
  EXPECT_DOUBLE_EQ(ex.result.cost, rec_->result.cost);
}

TEST_F(Example51Test, PartCostsCoverTheConfiguration) {
  ASSERT_EQ(rec_->part_costs.size(), 2u);
  double total = 0;
  for (const SubpathCost& c : rec_->part_costs) total += c.total();
  EXPECT_NEAR(total, rec_->result.cost, 1e-9);
}

TEST_F(Example51Test, MatrixRowMinimaAreConsistent) {
  const CostMatrix& m = rec_->matrix;
  for (const Subpath& sp : m.subpaths()) {
    const double min_cost = m.MinCost(sp);
    for (IndexOrg org : m.orgs()) {
      EXPECT_LE(min_cost, m.Cost(sp, org));
    }
    EXPECT_DOUBLE_EQ(m.Cost(sp, m.MinOrg(sp)), min_cost);
  }
}

TEST_F(Example51Test, PrefixSubpathPrefersNIX) {
  // Figure 8's pattern: the query-heavy prefix Per.owns.man is cheapest
  // under NIX (single-probe queries for 0.65 of the query mass).
  EXPECT_EQ(rec_->matrix.MinOrg(Subpath{1, 2}), IndexOrg::kNIX);
}

TEST_F(Example51Test, NoneOrganizationNeverWinsWhenEnabled) {
  // With scans costing thousands of pages, kNone must not displace real
  // indexes anywhere on this workload.
  AdvisorOptions opts;
  opts.orgs = {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX, IndexOrg::kNone};
  const Recommendation rec =
      AdviseIndexConfiguration(setup_.schema, setup_.path, setup_.catalog,
                               setup_.load, opts)
          .value();
  for (const IndexedSubpath& part : rec.result.config.parts()) {
    EXPECT_NE(part.org, IndexOrg::kNone);
  }
  EXPECT_DOUBLE_EQ(rec.result.cost, rec_->result.cost);
}

TEST_F(Example51Test, ScaledSetupKeepsTheShape) {
  // The physical simulator runs the same shape at 1/10 scale; the chosen
  // split must survive scaling.
  const PaperSetup scaled = MakeExample51Setup(10);
  const Recommendation rec =
      AdviseIndexConfiguration(scaled.schema, scaled.path, scaled.catalog,
                               scaled.load)
          .value();
  ASSERT_EQ(rec.result.config.degree(), 2);
  EXPECT_EQ(rec.result.config.parts()[0].subpath, (Subpath{1, 2}));
  EXPECT_EQ(rec.result.config.parts()[0].org, IndexOrg::kNIX);
}

// ------------------------------------------------------------- edge cases

TEST(AdvisorTest, SingleClassPath) {
  PaperSetup setup = MakeExample51Setup();
  const Path path =
      Path::Create(setup.schema, setup.division, {"name"}).value();
  const Recommendation rec =
      AdviseIndexConfiguration(setup.schema, path, setup.catalog, setup.load)
          .value();
  EXPECT_EQ(rec.result.config.degree(), 1);
  EXPECT_GT(rec.result.cost, 0);
}

TEST(AdvisorTest, QueryOnlyWorkloadPicksNIXEverywhere) {
  PaperSetup setup = MakeExample51Setup();
  LoadDistribution query_only;
  query_only.Set(setup.person, 1.0, 0.0, 0.0);
  const Recommendation rec =
      AdviseIndexConfiguration(setup.schema, setup.path, setup.catalog,
                               query_only)
          .value();
  // All query load w.r.t. the path root: one NIX over the whole path is
  // unbeatable (single probe per query, no maintenance).
  EXPECT_EQ(rec.result.config.degree(), 1);
  EXPECT_EQ(rec.result.config.parts()[0].org, IndexOrg::kNIX);
}

TEST(AdvisorTest, UpdateOnlyWorkloadAvoidsNIXOnLongSubpaths) {
  PaperSetup setup = MakeExample51Setup();
  LoadDistribution update_only;
  update_only.Set(setup.person, 0.0, 1.0, 1.0);
  update_only.Set(setup.vehicle, 0.0, 1.0, 1.0);
  update_only.Set(setup.company, 0.0, 1.0, 1.0);
  update_only.Set(setup.division, 0.0, 1.0, 1.0);
  const Recommendation rec =
      AdviseIndexConfiguration(setup.schema, setup.path, setup.catalog,
                               update_only)
          .value();
  for (const IndexedSubpath& part : rec.result.config.parts()) {
    if (part.subpath.length() > 1) {
      EXPECT_NE(part.org, IndexOrg::kNIX) << part.subpath.start;
    }
  }
}

}  // namespace
}  // namespace pathix
