#include "core/cost_matrix.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "datagen/paper_schema.h"

namespace pathix {
namespace {

TEST(CostMatrixTest, FromValuesRoundTrips) {
  const CostMatrix m = CostMatrix::FromValues(
      2, {IndexOrg::kMX, IndexOrg::kNIX}, {{5, 7}, {3, 2}, {9, 8}});
  EXPECT_EQ(m.path_length(), 2);
  EXPECT_EQ(m.subpaths().size(), 3u);
  EXPECT_DOUBLE_EQ(m.Cost(Subpath{1, 1}, IndexOrg::kMX), 5);
  EXPECT_DOUBLE_EQ(m.Cost(Subpath{2, 2}, IndexOrg::kNIX), 2);
  EXPECT_DOUBLE_EQ(m.Cost(Subpath{1, 2}, IndexOrg::kNIX), 8);
  EXPECT_EQ(m.MinOrg(Subpath{1, 1}), IndexOrg::kMX);
  EXPECT_EQ(m.MinOrg(Subpath{2, 2}), IndexOrg::kNIX);
}

TEST(CostMatrixTest, DefaultRowLabelsAreSubpathNames) {
  const CostMatrix m = CostMatrix::FromValues(
      2, {IndexOrg::kMX}, {{1}, {2}, {3}});
  EXPECT_EQ(m.RowLabel(0), "S[1,1]");
  EXPECT_EQ(m.RowLabel(2), "S[1,2]");
}

TEST(CostMatrixTest, BuildUsesSchemaLabels) {
  const PaperSetup setup = MakeExample51Setup();
  const PathContext ctx =
      PathContext::Build(setup.schema, setup.path, setup.catalog, setup.load)
          .value();
  const CostMatrix m = CostMatrix::Build(ctx);
  EXPECT_EQ(m.RowLabel(0), "Person.owns");
  EXPECT_EQ(m.RowLabel(9), "Person.owns.man.divs.name");
}

TEST(CostMatrixTest, PrintMarksRowMinima) {
  const CostMatrix m = CostMatrix::FromValues(
      2, {IndexOrg::kMX, IndexOrg::kNIX}, {{5, 7}, {3, 2}, {9, 8}});
  std::ostringstream os;
  m.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("5.00*"), std::string::npos);
  EXPECT_NE(out.find("2.00*"), std::string::npos);
  EXPECT_NE(out.find("8.00*"), std::string::npos);
  // Non-minimal cells carry no star.
  EXPECT_EQ(out.find("7.00*"), std::string::npos);
  EXPECT_NE(out.find("MX"), std::string::npos);
  EXPECT_NE(out.find("NIX"), std::string::npos);
}

TEST(CostMatrixTest, InfiniteEntriesRenderAndNeverWin) {
  const double inf = std::numeric_limits<double>::infinity();
  const CostMatrix m = CostMatrix::FromValues(
      1, {IndexOrg::kNX, IndexOrg::kMX}, {{inf, 4}});
  EXPECT_EQ(m.MinOrg(Subpath{1, 1}), IndexOrg::kMX);
  EXPECT_DOUBLE_EQ(m.MinCost(Subpath{1, 1}), 4);
  std::ostringstream os;
  m.Print(os);
  EXPECT_NE(os.str().find("inf"), std::string::npos);
}

TEST(CostMatrixTest, TiedMinimaAllStarred) {
  const CostMatrix m =
      CostMatrix::FromValues(1, {IndexOrg::kMX, IndexOrg::kMIX}, {{4, 4}});
  std::ostringstream os;
  m.Print(os);
  const std::string out = os.str();
  std::size_t stars = 0;
  for (std::size_t pos = out.find("4.00*"); pos != std::string::npos;
       pos = out.find("4.00*", pos + 1)) {
    ++stars;
  }
  EXPECT_EQ(stars, 2u);
}

}  // namespace
}  // namespace pathix
