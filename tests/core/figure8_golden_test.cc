// Golden regression guard for the calibrated Figure 8 reproduction: the
// cost-matrix values for Example 5.1 under the default physical parameters.
// These are OUR values, not the paper's (whose constants are in the
// unavailable report [7]); the test exists so that any model change that
// silently breaks the Example 5.1 reproduction fails loudly here first.

#include <gtest/gtest.h>

#include "core/cost_matrix.h"
#include "datagen/paper_schema.h"

namespace pathix {
namespace {

TEST(Figure8GoldenTest, MatrixValuesAreStable) {
  const PaperSetup setup = MakeExample51Setup();
  const PathContext ctx =
      PathContext::Build(setup.schema, setup.path, setup.catalog, setup.load)
          .value();
  const CostMatrix m = CostMatrix::Build(ctx);

  // Rows in EnumerateSubpaths(4) order; columns MX, MIX, NIX. 1% relative
  // tolerance: small npa refinements are fine, structural changes are not.
  const struct {
    Subpath sp;
    double mx, mix, nix;
  } golden[] = {
      {{1, 1}, 18.19, 18.55, 18.55},
      {{2, 2}, 8.56, 5.04, 5.07},
      {{3, 3}, 3.41, 3.44, 3.47},
      {{4, 4}, 2.80, 2.80, 2.80},
      {{1, 2}, 26.75, 23.59, 13.22},
      {{2, 3}, 11.97, 8.47, 11.62},
      {{3, 4}, 6.21, 6.24, 6.52},
      {{1, 3}, 30.16, 27.03, 39.49},
      {{2, 4}, 14.77, 11.27, 14.13},
      {{1, 4}, 32.96, 29.83, 32.99},
  };
  for (const auto& row : golden) {
    EXPECT_NEAR(m.Cost(row.sp, IndexOrg::kMX), row.mx, 0.01 * row.mx + 0.02)
        << ToString(row.sp);
    EXPECT_NEAR(m.Cost(row.sp, IndexOrg::kMIX), row.mix,
                0.01 * row.mix + 0.02)
        << ToString(row.sp);
    EXPECT_NEAR(m.Cost(row.sp, IndexOrg::kNIX), row.nix,
                0.01 * row.nix + 0.02)
        << ToString(row.sp);
  }
}

TEST(Figure8GoldenTest, StructuralWinnersAreStable) {
  const PaperSetup setup = MakeExample51Setup();
  const PathContext ctx =
      PathContext::Build(setup.schema, setup.path, setup.catalog, setup.load)
          .value();
  const CostMatrix m = CostMatrix::Build(ctx);
  // The cells that decide the Example 5.1 reproduction.
  EXPECT_EQ(m.MinOrg(Subpath{1, 2}), IndexOrg::kNIX);  // the NIX prefix
  EXPECT_EQ(m.MinOrg(Subpath{3, 4}), IndexOrg::kMX);   // the MX tail
}

}  // namespace
}  // namespace pathix
