#include "core/index_config.h"

#include <gtest/gtest.h>

#include "datagen/paper_schema.h"

namespace pathix {
namespace {

TEST(IndexConfigTest, ValidConfiguration) {
  IndexConfiguration cfg({{Subpath{1, 2}, IndexOrg::kNIX},
                          {Subpath{3, 4}, IndexOrg::kMX}});
  EXPECT_TRUE(cfg.Validate(4).ok());
  EXPECT_EQ(cfg.degree(), 2);
}

TEST(IndexConfigTest, WholePathIsDegreeOne) {
  IndexConfiguration cfg({{Subpath{1, 4}, IndexOrg::kNIX}});
  EXPECT_TRUE(cfg.Validate(4).ok());
  EXPECT_EQ(cfg.degree(), 1);
}

TEST(IndexConfigTest, EmptyRejected) {
  EXPECT_FALSE(IndexConfiguration().Validate(4).ok());
}

TEST(IndexConfigTest, GapRejected) {
  IndexConfiguration cfg({{Subpath{1, 1}, IndexOrg::kMX},
                          {Subpath{3, 4}, IndexOrg::kMX}});
  EXPECT_FALSE(cfg.Validate(4).ok());
}

TEST(IndexConfigTest, OverlapRejected) {
  IndexConfiguration cfg({{Subpath{1, 2}, IndexOrg::kMX},
                          {Subpath{2, 4}, IndexOrg::kMX}});
  EXPECT_FALSE(cfg.Validate(4).ok());
}

TEST(IndexConfigTest, ShortCoverRejected) {
  IndexConfiguration cfg({{Subpath{1, 3}, IndexOrg::kMX}});
  EXPECT_FALSE(cfg.Validate(4).ok());
}

TEST(IndexConfigTest, OverrunRejected) {
  IndexConfiguration cfg({{Subpath{1, 5}, IndexOrg::kMX}});
  EXPECT_FALSE(cfg.Validate(4).ok());
}

TEST(IndexConfigTest, RendersWithSchemaLabels) {
  const PaperSetup setup = MakeExample51Setup();
  IndexConfiguration cfg({{Subpath{1, 2}, IndexOrg::kNIX},
                          {Subpath{3, 4}, IndexOrg::kMX}});
  EXPECT_EQ(cfg.ToString(setup.schema, setup.path),
            "{(Person.owns.man, NIX), (Company.divs.name, MX)}");
  EXPECT_EQ(cfg.ToString(), "{(S[1,2], NIX), (S[3,4], MX)}");
}

}  // namespace
}  // namespace pathix
