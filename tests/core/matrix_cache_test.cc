// CostMatrixBuilder: the cached Cost_Matrix construction must be
// indistinguishable from CostMatrix::Build — same values bit for bit —
// while eliminating model evaluations on load-only changes.

#include <gtest/gtest.h>

#include <random>

#include "core/matrix_cache.h"
#include "datagen/paper_schema.h"

namespace pathix {
namespace {

const std::vector<IndexOrg> kAllOrgs = {IndexOrg::kMX,  IndexOrg::kMIX,
                                        IndexOrg::kNIX, IndexOrg::kNX,
                                        IndexOrg::kPX,  IndexOrg::kNone};

LoadDistribution RandomLoad(const PaperSetup& setup, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> weight(0.0, 1.0);
  LoadDistribution load;
  for (ClassId cls : setup.path.Scope(setup.schema)) {
    load.Set(cls, weight(rng), weight(rng), weight(rng));
  }
  return load;
}

void ExpectSameMatrix(const CostMatrix& a, const CostMatrix& b) {
  ASSERT_EQ(a.path_length(), b.path_length());
  ASSERT_EQ(a.orgs(), b.orgs());
  for (const Subpath& sp : a.subpaths()) {
    for (IndexOrg org : a.orgs()) {
      EXPECT_DOUBLE_EQ(a.Cost(sp, org), b.Cost(sp, org))
          << ToString(sp) << " " << ToString(org);
    }
  }
}

TEST(CostMatrixBuilderTest, MatchesUncachedBuildAcrossRandomLoads) {
  const PaperSetup setup = MakeExample51Setup();
  CostMatrixBuilder builder(kAllOrgs);
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    const LoadDistribution load = RandomLoad(setup, seed);
    const PathContext ctx =
        PathContext::Build(setup.schema, setup.path, setup.catalog, load)
            .value();
    ExpectSameMatrix(builder.Build(ctx), CostMatrix::Build(ctx, kAllOrgs));
  }
  // One miss (the first call), then pure reweighting.
  EXPECT_EQ(builder.model_rebuilds(), 1u);
  EXPECT_EQ(builder.cache_hits(), 7u);
}

TEST(CostMatrixBuilderTest, RowLabelsAndMinimaMatch) {
  const PaperSetup setup = MakeExample51Setup();
  const PathContext ctx = PathContext::Build(setup.schema, setup.path,
                                             setup.catalog, setup.load)
                              .value();
  CostMatrixBuilder builder;
  const CostMatrix cached = builder.Build(ctx);
  const CostMatrix plain = CostMatrix::Build(ctx);
  for (int row = 0; row < static_cast<int>(cached.subpaths().size()); ++row) {
    EXPECT_EQ(cached.RowLabel(row), plain.RowLabel(row));
  }
  for (const Subpath& sp : cached.subpaths()) {
    EXPECT_EQ(cached.MinOrg(sp), plain.MinOrg(sp)) << ToString(sp);
  }
}

TEST(CostMatrixBuilderTest, StatisticsChangeInvalidatesTheCache) {
  PaperSetup setup = MakeExample51Setup();
  CostMatrixBuilder builder;
  {
    const PathContext ctx = PathContext::Build(setup.schema, setup.path,
                                               setup.catalog, setup.load)
                                .value();
    builder.Build(ctx);
    builder.Build(ctx);
  }
  EXPECT_EQ(builder.model_rebuilds(), 1u);
  EXPECT_EQ(builder.cache_hits(), 1u);

  // Grow Person: the fingerprint moves, the models are re-evaluated, and
  // the fresh values still match an uncached build.
  ClassStats person = setup.catalog.GetClassStats(setup.person);
  person.n *= 2;
  setup.catalog.SetClassStats(setup.person, person);
  const PathContext grown = PathContext::Build(setup.schema, setup.path,
                                               setup.catalog, setup.load)
                                .value();
  ExpectSameMatrix(builder.Build(grown),
                   CostMatrix::Build(grown, builder.orgs()));
  EXPECT_EQ(builder.model_rebuilds(), 2u);

  builder.Invalidate();
  builder.Build(grown);
  EXPECT_EQ(builder.model_rebuilds(), 3u);
}

}  // namespace
}  // namespace pathix
