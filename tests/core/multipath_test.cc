#include "core/multipath.h"

#include <gtest/gtest.h>

#include "datagen/paper_schema.h"

namespace pathix {
namespace {

class MultiPathTest : public ::testing::Test {
 protected:
  void SetUp() override { setup_ = MakeExample51Setup(); }
  PaperSetup setup_;
};

TEST_F(MultiPathTest, EmptyInputRejected) {
  Result<MultiPathRecommendation> r =
      AdviseMultiplePaths(setup_.schema, setup_.catalog, {});
  EXPECT_FALSE(r.ok());
}

TEST_F(MultiPathTest, SinglePathMatchesAdvisor) {
  const MultiPathRecommendation multi =
      AdviseMultiplePaths(setup_.schema, setup_.catalog,
                          {{"", setup_.path, setup_.load}})
          .value();
  const Recommendation single =
      AdviseIndexConfiguration(setup_.schema, setup_.path, setup_.catalog,
                               setup_.load)
          .value();
  ASSERT_EQ(multi.per_path.size(), 1u);
  EXPECT_DOUBLE_EQ(multi.total_cost_independent, single.result.cost);
  EXPECT_DOUBLE_EQ(multi.total_cost_shared, single.result.cost);
  EXPECT_TRUE(multi.shared.empty());
}

TEST_F(MultiPathTest, IdenticalPathsShareEverything) {
  const MultiPathRecommendation multi =
      AdviseMultiplePaths(setup_.schema, setup_.catalog,
                          {{"", setup_.path, setup_.load},
                           {"", setup_.path, setup_.load}})
          .value();
  ASSERT_EQ(multi.per_path.size(), 2u);
  EXPECT_FALSE(multi.shared.empty());
  EXPECT_LT(multi.total_cost_shared, multi.total_cost_independent);
  // Savings are exactly the duplicated maintenance shares.
  double expected_saving = 0;
  for (const SharedIndex& s : multi.shared) expected_saving += s.saved_cost;
  EXPECT_NEAR(multi.total_cost_independent - multi.total_cost_shared,
              expected_saving, 1e-9);
}

TEST_F(MultiPathTest, OverlappingPathsShareCommonSubpathIndexes) {
  // Pe = Per.owns.man.name shares nothing structurally with Pexa unless the
  // optimizer happens to cut at the same classes with the same organization;
  // a shared Division.name / Company.divs tail appears for these two:
  const Path tail_path =
      Path::Create(setup_.schema, setup_.company, {"divs", "name"}).value();
  LoadDistribution tail_load;
  tail_load.Set(setup_.company, 0.1, 0.1, 0.1);
  tail_load.Set(setup_.division, 0.2, 0.2, 0.1);

  const MultiPathRecommendation multi =
      AdviseMultiplePaths(setup_.schema, setup_.catalog,
                          {{"", setup_.path, setup_.load},
                           {"", tail_path, tail_load}})
          .value();
  ASSERT_EQ(multi.per_path.size(), 2u);
  // Pexa's optimum ends with (Company.divs.name, MX); the standalone tail
  // path picks an organization for the same class sequence. If they agree,
  // sharing must be detected; either way totals stay consistent.
  double sum = 0;
  for (const Recommendation& r : multi.per_path) sum += r.result.cost;
  EXPECT_DOUBLE_EQ(multi.total_cost_independent, sum);
  EXPECT_LE(multi.total_cost_shared, multi.total_cost_independent);
}

TEST_F(MultiPathTest, SharedLabelsNamePathIndexes) {
  const MultiPathRecommendation multi =
      AdviseMultiplePaths(setup_.schema, setup_.catalog,
                          {{"", setup_.path, setup_.load},
                           {"", setup_.path, setup_.load}})
          .value();
  ASSERT_FALSE(multi.shared.empty());
  for (const SharedIndex& s : multi.shared) {
    EXPECT_EQ(s.path_indexes.size(), 2u);
    EXPECT_NE(s.label.find("("), std::string::npos);
  }
}

TEST_F(MultiPathTest, SharedIndexesCarryTheirStructuralKey) {
  // Sharing is keyed on structure (class ids + attributes + organization),
  // not on the rendered label; the label is derived from the key.
  const MultiPathRecommendation multi =
      AdviseMultiplePaths(setup_.schema, setup_.catalog,
                          {{"", setup_.path, setup_.load},
                           {"", setup_.path, setup_.load}})
          .value();
  ASSERT_FALSE(multi.shared.empty());
  for (const SharedIndex& s : multi.shared) {
    EXPECT_FALSE(s.key.classes.empty());
    EXPECT_EQ(s.key.classes.size(), s.key.attrs.size());
    EXPECT_EQ(s.label, s.key.Label(setup_.schema));
  }
}

TEST_F(MultiPathTest, SubclassTypedPathsDoNotMergeHeads) {
  // Vehicle.man... and Bus.man... navigate the same inherited attribute but
  // are rooted at different classes; whatever configurations the advisor
  // picks, no shared index may mix the two roots.
  LoadDistribution vehicle_load;
  vehicle_load.Set(setup_.vehicle, 0.4, 0.1, 0.1);
  vehicle_load.Set(setup_.division, 0.2, 0.1, 0.1);
  LoadDistribution bus_load;
  bus_load.Set(setup_.bus, 0.4, 0.1, 0.1);
  bus_load.Set(setup_.division, 0.2, 0.1, 0.1);
  const Path vehicle_path =
      Path::Create(setup_.schema, setup_.vehicle, {"man", "divs", "name"})
          .value();
  const Path bus_path =
      Path::Create(setup_.schema, setup_.bus, {"man", "divs", "name"})
          .value();

  const MultiPathRecommendation multi =
      AdviseMultiplePaths(setup_.schema, setup_.catalog,
                          {{"", vehicle_path, vehicle_load},
                           {"", bus_path, bus_load}})
          .value();
  for (const SharedIndex& s : multi.shared) {
    // A shared index must be structurally reachable from both paths: its
    // class sequence cannot start at Vehicle or Bus (which differ), only at
    // the common Company tail.
    EXPECT_NE(s.key.classes.front(), setup_.vehicle) << s.label;
    EXPECT_NE(s.key.classes.front(), setup_.bus) << s.label;
  }
}

}  // namespace
}  // namespace pathix
