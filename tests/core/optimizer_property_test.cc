#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "core/optimizer.h"

/// \file optimizer_property_test.cc
/// \brief Cross-algorithm property test: SelectExhaustive,
/// SelectBranchAndBound and SelectDP must report the *same optimal cost* on
/// any cost matrix. The exhaustive search is ground truth; this keeps the
/// three solvers from drifting apart as they are optimized independently.

namespace pathix {
namespace {

/// Fills an n-path cost matrix with draws from `dist` (seeded — every run
/// sees the same matrices).
template <typename Dist>
CostMatrix RandomMatrix(int n, std::uint32_t seed,
                        const std::vector<IndexOrg>& orgs, Dist dist) {
  std::mt19937 rng(seed);
  std::vector<std::vector<double>> values;
  values.reserve(static_cast<std::size_t>(NumSubpaths(n)));
  for (int row = 0; row < NumSubpaths(n); ++row) {
    std::vector<double> cols;
    cols.reserve(orgs.size());
    for (std::size_t c = 0; c < orgs.size(); ++c) {
      cols.push_back(static_cast<double>(dist(rng)));
    }
    values.push_back(std::move(cols));
  }
  return CostMatrix::FromValues(n, orgs, std::move(values));
}

void ExpectAllSolversAgree(const CostMatrix& m, const char* what,
                           std::uint32_t seed) {
  const int n = m.path_length();
  const OptimizeResult ex = SelectExhaustive(m);
  const OptimizeResult bb = SelectBranchAndBound(m);
  const OptimizeResult dp = SelectDP(m);
  ASSERT_NEAR(ex.cost, bb.cost, 1e-9)
      << what << ": exhaustive vs branch-and-bound, n=" << n
      << " seed=" << seed;
  ASSERT_NEAR(ex.cost, dp.cost, 1e-9)
      << what << ": exhaustive vs DP, n=" << n << " seed=" << seed;
  // Each solver's reported cost must equal the cost of the configuration it
  // actually returned (no bookkeeping drift), and the configuration must be
  // a valid cover of [1, n].
  for (const OptimizeResult* r : {&ex, &bb, &dp}) {
    ASSERT_TRUE(r->config.Validate(n).ok()) << what << ": n=" << n;
    double recomputed = 0;
    for (const IndexedSubpath& part : r->config.parts()) {
      recomputed += m.Cost(part.subpath, part.org);
    }
    ASSERT_NEAR(recomputed, r->cost, 1e-9) << what << ": n=" << n;
  }
}

class SolverAgreementPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverAgreementPropertyTest, ContinuousCosts) {
  const int n = GetParam();
  const std::vector<IndexOrg> orgs = {IndexOrg::kMX, IndexOrg::kMIX,
                                      IndexOrg::kNIX};
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    const CostMatrix m = RandomMatrix(
        n, 1000003u * n + seed, orgs,
        std::uniform_real_distribution<double>(0.5, 50.0));
    ExpectAllSolversAgree(m, "continuous", seed);
  }
}

TEST_P(SolverAgreementPropertyTest, TieHeavyIntegerCosts) {
  // Small integer costs force many exact ties between configurations; the
  // solvers may pick different optimal configurations, but the optimal cost
  // must still be identical.
  const int n = GetParam();
  const std::vector<IndexOrg> orgs = {IndexOrg::kMX, IndexOrg::kNIX};
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    const CostMatrix m =
        RandomMatrix(n, 7919u * n + seed, orgs,
                     std::uniform_int_distribution<int>(1, 4));
    ExpectAllSolversAgree(m, "tie-heavy", seed);
  }
}

TEST_P(SolverAgreementPropertyTest, SingleOrganization) {
  const int n = GetParam();
  for (std::uint32_t seed = 1; seed <= 10; ++seed) {
    const CostMatrix m = RandomMatrix(
        n, 104729u * n + seed, {IndexOrg::kMIX},
        std::uniform_real_distribution<double>(1.0, 10.0));
    ExpectAllSolversAgree(m, "single-org", seed);
  }
}

INSTANTIATE_TEST_SUITE_P(PathLengths1To10, SolverAgreementPropertyTest,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace pathix
