#include "core/optimizer.h"

#include <gtest/gtest.h>

#include <random>

#include "datagen/paper_schema.h"

namespace pathix {
namespace {

// ------------------------------------------------ Figure 6 walkthrough (E4)

class Figure6Test : public ::testing::Test {
 protected:
  CostMatrix m_ = MakeFigure6Matrix();
};

TEST_F(Figure6Test, RowMinimaMatchTheUnderlinedValues) {
  EXPECT_EQ(m_.MinCost(Subpath{1, 1}), 3);
  EXPECT_EQ(m_.MinOrg(Subpath{1, 1}), IndexOrg::kMX);
  EXPECT_EQ(m_.MinCost(Subpath{3, 3}), 2);
  EXPECT_EQ(m_.MinCost(Subpath{4, 4}), 4);
  EXPECT_EQ(m_.MinCost(Subpath{1, 2}), 6);
  EXPECT_EQ(m_.MinOrg(Subpath{1, 2}), IndexOrg::kMIX);
  EXPECT_EQ(m_.MinCost(Subpath{2, 4}), 5);
  EXPECT_EQ(m_.MinOrg(Subpath{2, 4}), IndexOrg::kNIX);
  EXPECT_EQ(m_.MinCost(Subpath{1, 4}), 9);
  EXPECT_EQ(m_.MinOrg(Subpath{1, 4}), IndexOrg::kNIX);
}

TEST_F(Figure6Test, BranchAndBoundFindsThePaperOptimum) {
  const OptimizeResult r = SelectBranchAndBound(m_);
  // Section 5: {(C1.A1, MX), (C2.A2.A3.A4, NIX)} with processing cost 8.
  EXPECT_DOUBLE_EQ(r.cost, 8);
  ASSERT_EQ(r.config.degree(), 2);
  EXPECT_EQ(r.config.parts()[0],
            (IndexedSubpath{Subpath{1, 1}, IndexOrg::kMX}));
  EXPECT_EQ(r.config.parts()[1],
            (IndexedSubpath{Subpath{2, 4}, IndexOrg::kNIX}));
}

TEST_F(Figure6Test, WalkthroughTraceMatchesThePaperNarrative) {
  const OptimizeResult r = SelectBranchAndBound(m_, /*capture_trace=*/true);
  // The narrative costs, in order: initial 9; candidates 12 ({13|4}),
  // 12 ({12|34}), 12 ({12|3|4}), 8 ({1|234}, improvement), prune at 8
  // ({1|23...}), 13 ({1|2|34}), prune at 9 ({1|2|3...}).
  std::vector<std::pair<OptimizerTraceEvent::Kind, double>> got;
  for (const OptimizerTraceEvent& ev : r.trace) {
    got.emplace_back(ev.kind, ev.cost);
  }
  using K = OptimizerTraceEvent::Kind;
  const std::vector<std::pair<K, double>> expected = {
      {K::kInitial, 9},   {K::kEvaluated, 12}, {K::kEvaluated, 12},
      {K::kEvaluated, 12}, {K::kEvaluated, 8},  {K::kImproved, 8},
      {K::kPruned, 8},    {K::kEvaluated, 13}, {K::kPruned, 9},
  };
  EXPECT_EQ(got, expected);
}

TEST_F(Figure6Test, PruningCounters) {
  const OptimizeResult r = SelectBranchAndBound(m_);
  EXPECT_EQ(r.evaluated, 6);  // 1 initial + 5 candidates
  EXPECT_EQ(r.pruned, 2);
  const OptimizeResult ex = SelectExhaustive(m_);
  EXPECT_EQ(ex.evaluated, 8);  // 2^(4-1)
  EXPECT_DOUBLE_EQ(ex.cost, r.cost);
}

// -------------------------------------------------- cross-method agreement

CostMatrix RandomMatrix(int n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(1.0, 100.0);
  std::vector<std::vector<double>> values;
  for (int i = 0; i < NumSubpaths(n); ++i) {
    values.push_back({dist(rng), dist(rng), dist(rng)});
  }
  return CostMatrix::FromValues(
      n, {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX}, std::move(values));
}

class OptimizerAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerAgreementTest, BnBAndDPMatchExhaustiveOnRandomMatrices) {
  const int n = GetParam();
  for (std::uint32_t seed = 0; seed < 25; ++seed) {
    const CostMatrix m = RandomMatrix(n, seed * 7919 + n);
    const OptimizeResult ex = SelectExhaustive(m);
    const OptimizeResult bb = SelectBranchAndBound(m);
    const OptimizeResult dp = SelectDP(m);
    ASSERT_NEAR(bb.cost, ex.cost, 1e-9) << "n=" << n << " seed=" << seed;
    ASSERT_NEAR(dp.cost, ex.cost, 1e-9) << "n=" << n << " seed=" << seed;
    // The chosen configurations must be valid covers with the stated cost.
    ASSERT_TRUE(bb.config.Validate(n).ok());
    ASSERT_TRUE(dp.config.Validate(n).ok());
    double check = 0;
    for (const IndexedSubpath& part : bb.config.parts()) {
      check += m.Cost(part.subpath, part.org);
    }
    ASSERT_NEAR(check, bb.cost, 1e-9);
    // Branch and bound never explores more than the exhaustive search.
    ASSERT_LE(bb.evaluated, ex.evaluated);
  }
}

INSTANTIATE_TEST_SUITE_P(PathLengths, OptimizerAgreementTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 10, 12));

TEST(OptimizerTest, LengthOnePathHasSingleConfiguration) {
  const CostMatrix m = CostMatrix::FromValues(
      1, {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX}, {{5, 4, 6}});
  const OptimizeResult r = SelectBranchAndBound(m);
  EXPECT_DOUBLE_EQ(r.cost, 4);
  EXPECT_EQ(r.config.degree(), 1);
  EXPECT_EQ(r.config.parts()[0].org, IndexOrg::kMIX);
  EXPECT_EQ(r.evaluated, 1);
}

TEST(OptimizerTest, TiesKeepFirstFoundOptimum) {
  // All entries equal: splitting never helps; the degree-1 seed must win
  // (the paper prunes on >=).
  std::vector<std::vector<double>> values(NumSubpaths(4),
                                          std::vector<double>{1, 1, 1});
  const CostMatrix m = CostMatrix::FromValues(
      4, {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX}, std::move(values));
  const OptimizeResult r = SelectBranchAndBound(m);
  EXPECT_EQ(r.config.degree(), 1);
  EXPECT_DOUBLE_EQ(r.cost, 1);
  EXPECT_EQ(r.evaluated, 1);  // every split prunes at the first block
}

TEST(OptimizerTest, EmptyPathYieldsEmptyConfiguration) {
  // Regression: `1 << (n - 1)` was UB for n = 0; the exhaustive search must
  // return the trivial result instead of shifting by a negative amount.
  const CostMatrix m = CostMatrix::FromValues(
      0, {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX}, {});
  const OptimizeResult r = SelectExhaustive(m);
  EXPECT_TRUE(r.config.empty());
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
  EXPECT_EQ(r.evaluated, 0);
}

TEST(OptimizerTest, PathsBeyond63LevelsFallBackToDP) {
  // Regression: `1 << (n - 1)` overflows std::uint64_t for n > 64 (and the
  // 2^(n-1) walk is intractable anyway). SelectExhaustive must delegate to
  // the DP, which still finds the optimum in O(n^2).
  const int n = 70;
  std::vector<std::vector<double>> values;
  for (const Subpath& sp : EnumerateSubpaths(n)) {
    // Cost grows quadratically in block length, so the unique optimum is
    // all-singletons with total cost n.
    values.push_back({static_cast<double>(sp.length()) * sp.length()});
  }
  const CostMatrix m =
      CostMatrix::FromValues(n, {IndexOrg::kNIX}, std::move(values));
  const OptimizeResult ex = SelectExhaustive(m);
  const OptimizeResult dp = SelectDP(m);
  EXPECT_DOUBLE_EQ(ex.cost, static_cast<double>(n));
  EXPECT_DOUBLE_EQ(ex.cost, dp.cost);
  EXPECT_EQ(ex.config.degree(), n);
  ASSERT_TRUE(ex.config.Validate(n).ok());
}

TEST(OptimizerTest, TraceEventToStringMentionsKindAndCost) {
  const CostMatrix m = MakeFigure6Matrix();
  const OptimizeResult r = SelectBranchAndBound(m, true);
  ASSERT_FALSE(r.trace.empty());
  EXPECT_NE(r.trace.front().ToString().find("initial"), std::string::npos);
  EXPECT_NE(r.trace.front().ToString().find("cost=9"), std::string::npos);
}

}  // namespace
}  // namespace pathix
