#include "core/structural_key.h"

#include <gtest/gtest.h>

#include <map>

#include "datagen/paper_schema.h"

namespace pathix {
namespace {

class StructuralKeyTest : public ::testing::Test {
 protected:
  void SetUp() override { setup_ = MakeExample51Setup(); }
  PaperSetup setup_;
};

TEST_F(StructuralKeyTest, SameStructureFromDifferentPathsCompareEqual) {
  // Company.divs.name as the tail [3,4] of Pexa and as a standalone path.
  const Path tail =
      Path::Create(setup_.schema, setup_.company, {"divs", "name"}).value();
  const StructuralKey from_pexa =
      StructuralKey::ForSubpath(setup_.path, 3, 4, IndexOrg::kMX);
  const StructuralKey standalone =
      StructuralKey::ForSubpath(tail, 1, 2, IndexOrg::kMX);
  EXPECT_EQ(from_pexa, standalone);
  EXPECT_FALSE(from_pexa < standalone);
  EXPECT_FALSE(standalone < from_pexa);
}

TEST_F(StructuralKeyTest, OrganizationIsPartOfTheIdentity) {
  const StructuralKey mx =
      StructuralKey::ForSubpath(setup_.path, 3, 4, IndexOrg::kMX);
  const StructuralKey nix =
      StructuralKey::ForSubpath(setup_.path, 3, 4, IndexOrg::kNIX);
  EXPECT_FALSE(mx == nix);
  EXPECT_TRUE(mx < nix || nix < mx);
}

TEST_F(StructuralKeyTest, SubclassTypedSubpathsDiffer) {
  // Bus.man and Vehicle.man navigate the same (inherited) attribute but are
  // rooted at different classes: different physical indexes.
  const Path vehicle_path =
      Path::Create(setup_.schema, setup_.vehicle, {"man", "divs", "name"})
          .value();
  const Path bus_path =
      Path::Create(setup_.schema, setup_.bus, {"man", "divs", "name"})
          .value();
  const StructuralKey vehicle_head =
      StructuralKey::ForSubpath(vehicle_path, 1, 1, IndexOrg::kMIX);
  const StructuralKey bus_head =
      StructuralKey::ForSubpath(bus_path, 1, 1, IndexOrg::kMIX);
  EXPECT_FALSE(vehicle_head == bus_head);
  // Their shared tail is identical.
  EXPECT_EQ(StructuralKey::ForSubpath(vehicle_path, 2, 3, IndexOrg::kMIX),
            StructuralKey::ForSubpath(bus_path, 2, 3, IndexOrg::kMIX));
}

TEST_F(StructuralKeyTest, UsableAsOrderedMapKey) {
  std::map<StructuralKey, int> counts;
  for (const IndexOrg org : {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kMX}) {
    ++counts[StructuralKey::ForSubpath(setup_.path, 1, 2, org)];
  }
  EXPECT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[StructuralKey::ForSubpath(setup_.path, 1, 2,
                                             IndexOrg::kMX)],
            2);
}

TEST_F(StructuralKeyTest, LabelRendersLikeThePathButIsNotIdentity) {
  const StructuralKey key =
      StructuralKey::ForSubpath(setup_.path, 3, 4, IndexOrg::kMX);
  EXPECT_EQ(key.Label(setup_.schema), "Company.divs.name (MX)");
}

}  // namespace
}  // namespace pathix
