#include "core/subpath.h"

#include <gtest/gtest.h>

namespace pathix {
namespace {

TEST(SubpathTest, CountMatchesClosedForm) {
  // The paper: a path of length n splits into n(n+1)/2 subpaths.
  for (int n = 1; n <= 12; ++n) {
    EXPECT_EQ(static_cast<int>(EnumerateSubpaths(n).size()), NumSubpaths(n));
    EXPECT_EQ(NumSubpaths(n), n * (n + 1) / 2);
  }
}

TEST(SubpathTest, OrderedByLengthThenStart) {
  const std::vector<Subpath> subs = EnumerateSubpaths(4);
  ASSERT_EQ(subs.size(), 10u);
  EXPECT_EQ(subs[0], (Subpath{1, 1}));
  EXPECT_EQ(subs[3], (Subpath{4, 4}));
  EXPECT_EQ(subs[4], (Subpath{1, 2}));
  EXPECT_EQ(subs[9], (Subpath{1, 4}));
}

TEST(SubpathTest, RowIndexIsDense) {
  for (int n = 1; n <= 9; ++n) {
    const std::vector<Subpath> subs = EnumerateSubpaths(n);
    for (std::size_t i = 0; i < subs.size(); ++i) {
      EXPECT_EQ(SubpathRowIndex(n, subs[i]), static_cast<int>(i));
    }
  }
}

TEST(SubpathTest, LengthAndToString) {
  const Subpath sp{2, 4};
  EXPECT_EQ(sp.length(), 3);
  EXPECT_EQ(ToString(sp), "S[2,4]");
}

}  // namespace
}  // namespace pathix
