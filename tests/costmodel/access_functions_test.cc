#include "costmodel/access_functions.h"

#include <gtest/gtest.h>

#include "common/math.h"

namespace pathix {
namespace {

PhysicalParams DefaultParams() { return PhysicalParams{}; }

class AccessFunctionsTest : public ::testing::Test {
 protected:
  // 1000 single-page records, height 2.
  BTreeModel small_ = BTreeModel::Build(1000, 50, 8, DefaultParams());
  // 100 records of 3 pages each, multi-page branch.
  BTreeModel big_ = BTreeModel::Build(100, 10000, 8, DefaultParams());
};

TEST_F(AccessFunctionsTest, CRLIsHeightForSmallRecords) {
  EXPECT_EQ(CRL(small_), small_.height());
}

TEST_F(AccessFunctionsTest, CRLMultiPageAddsPr) {
  // h - 1 + pr with pr = record_pages = 3.
  EXPECT_EQ(CRL(big_), big_.height() - 1 + 3);
}

TEST_F(AccessFunctionsTest, CMLAddsRewritePage) {
  EXPECT_EQ(CML(small_), small_.height() + 1);
}

TEST_F(AccessFunctionsTest, CMLMultiPageFetchesAndRewrites) {
  // h - 1 + 2 * pm with pm defaulting to 1.
  EXPECT_EQ(CML(big_), big_.height() - 1 + 2);
  // Definition 4.2's CMD variant: all record pages are maintained.
  EXPECT_EQ(CMLWithPm(big_, big_.record_pages()), big_.height() - 1 + 6);
}

TEST_F(AccessFunctionsTest, CRTOfOneEqualsCRL) {
  EXPECT_NEAR(CRT(small_, 1), CRL(small_), 1e-9);
  EXPECT_NEAR(CRT(big_, 1), CRL(big_), 1e-9);
}

TEST_F(AccessFunctionsTest, CRTZeroIsFree) {
  EXPECT_EQ(CRT(small_, 0), 0);
  EXPECT_EQ(CMT(small_, 0), 0);
}

TEST_F(AccessFunctionsTest, CRTMonotoneInT) {
  double prev = 0;
  for (double t = 1; t <= 200; t += 7) {
    const double v = CRT(small_, t);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST_F(AccessFunctionsTest, CRTBoundedByFullScan) {
  // Retrieving every record cannot cost more than all pages once per level.
  double all_pages = 0;
  for (const auto& lvl : small_.levels()) all_pages += lvl.pages;
  EXPECT_LE(CRT(small_, 1000), all_pages);
}

TEST_F(AccessFunctionsTest, CMTExceedsCRTForSinglePageRecords) {
  // Maintenance rewrites what retrieval only reads.
  for (double t : {1.0, 5.0, 50.0}) {
    EXPECT_GT(CMT(small_, t), CRT(small_, t));
  }
}

TEST_F(AccessFunctionsTest, CMTMultiPageTouchesOnlyModifiedPages) {
  // "In the case a record occupies more than one page we assume that only
  // the pages which should be modified are retrieved and updated"
  // (Section 3.1): 2 * t * pm at the leaves, pm defaulting to 1 page.
  const double t = 50;
  EXPECT_GT(CMT(big_, t), 2 * t * big_.pm());
  EXPECT_LT(CMT(big_, t), 2 * t * big_.pm() + big_.height());
  // Full-record retrieval (pr = 3 pages) can therefore cost more.
  EXPECT_GT(CRT(big_, t), CMT(big_, t));
}

TEST_F(AccessFunctionsTest, CRTMultiPageLinearInT) {
  const double c1 = CRTWithPr(big_, 1, 3);
  const double c10 = CRTWithPr(big_, 10, 3);
  // Leaf share grows by 3 pages per extra record.
  EXPECT_NEAR(c10 - c1, 9 * 3 + (YaoNpa(10, 100, big_.levels()[0].pages) -
                                 YaoNpa(1, 100, big_.levels()[0].pages)),
              1e-6);
}

TEST_F(AccessFunctionsTest, PartialPrReducesCost) {
  EXPECT_LT(CRTWithPr(big_, 5, 1), CRTWithPr(big_, 5, 3));
  EXPECT_LT(CRLWithPr(big_, 1), CRL(big_));
}

TEST_F(AccessFunctionsTest, CRRSmallRecordsShareLeafPages) {
  // Rewriting x small records costs at most x pages and at least 1.
  const double v = CRR(small_, 10);
  EXPECT_GE(v, 1);
  EXPECT_LE(v, 10);
}

TEST_F(AccessFunctionsTest, CRRMultiPagePerRecord) {
  EXPECT_EQ(CRR(big_, 4), 4 * big_.pm());
}

}  // namespace
}  // namespace pathix
