#include "costmodel/btree_model.h"

#include <gtest/gtest.h>

namespace pathix {
namespace {

PhysicalParams DefaultParams() { return PhysicalParams{}; }

TEST(BTreeModelTest, EmptyIndexHasOneLeafPage) {
  const BTreeModel m = BTreeModel::Build(0, 50, 8, DefaultParams());
  EXPECT_EQ(m.height(), 1);
  EXPECT_EQ(m.leaf_pages(), 1);
}

TEST(BTreeModelTest, SmallIndexIsOneLevel) {
  // 10 records of 50 bytes fit a single 4096-byte page.
  const BTreeModel m = BTreeModel::Build(10, 50, 8, DefaultParams());
  EXPECT_EQ(m.height(), 1);
  EXPECT_EQ(m.leaf_pages(), 1);
  EXPECT_FALSE(m.multi_page_record());
}

TEST(BTreeModelTest, TwoLevelShape) {
  // 1000 records of 50 bytes: 81 per page -> 13 leaf pages -> 1 root.
  const BTreeModel m = BTreeModel::Build(1000, 50, 8, DefaultParams());
  EXPECT_EQ(m.height(), 2);
  EXPECT_EQ(m.leaf_pages(), 13);
  EXPECT_EQ(m.levels().front().pages, 1);
  EXPECT_EQ(m.levels().front().records, 13);
}

TEST(BTreeModelTest, ThreeLevelShape) {
  // 200000 records of 50 bytes: 2470 leaf pages; fanout 256 -> 10 pages ->
  // 1 root: height 3.
  const BTreeModel m = BTreeModel::Build(200000, 50, 8, DefaultParams());
  EXPECT_EQ(m.height(), 3);
  EXPECT_EQ(m.leaf_pages(), 2470);
}

TEST(BTreeModelTest, MultiPageRecordChainsLeafPages) {
  // 100 records of 10000 bytes: 3 pages per record, 300 leaf pages.
  const BTreeModel m = BTreeModel::Build(100, 10000, 8, DefaultParams());
  EXPECT_TRUE(m.multi_page_record());
  EXPECT_EQ(m.record_pages(), 3);
  EXPECT_EQ(m.leaf_pages(), 300);
  // Parent level addresses the 100 record starts, not the 300 pages.
  ASSERT_GE(m.height(), 2);
  EXPECT_EQ(m.levels()[m.height() - 2].records, 100);
}

TEST(BTreeModelTest, PrDefaultsToWholeRecord) {
  const BTreeModel m = BTreeModel::Build(100, 10000, 8, DefaultParams());
  EXPECT_EQ(m.pr(), 3);
  EXPECT_EQ(m.pm(), 1);
}

TEST(BTreeModelTest, OverridesRespected) {
  PhysicalParams pp;
  pp.pr_override = 2;
  pp.pm_override = 1.5;
  const BTreeModel m = BTreeModel::Build(100, 10000, 8, pp);
  EXPECT_EQ(m.pr(), 2);
  EXPECT_EQ(m.pm(), 1.5);
}

TEST(BTreeModelTest, HeightGrowsMonotonicallyWithRecords) {
  int prev_height = 0;
  for (double n : {1.0, 100.0, 10000.0, 1e6, 1e8}) {
    const BTreeModel m = BTreeModel::Build(n, 50, 8, DefaultParams());
    EXPECT_GE(m.height(), prev_height);
    prev_height = m.height();
  }
  EXPECT_GE(prev_height, 3);
}

TEST(BTreeModelTest, LevelsShrinkUpward) {
  const BTreeModel m = BTreeModel::Build(1e7, 100, 8, DefaultParams());
  for (std::size_t i = 1; i < m.levels().size(); ++i) {
    EXPECT_LT(m.levels()[i - 1].pages, m.levels()[i].pages);
  }
  EXPECT_EQ(m.levels().front().pages, 1);  // root
}

}  // namespace
}  // namespace pathix
