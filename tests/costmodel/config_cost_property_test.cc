// Property tests for the cost decomposition of Section 4: configuration
// costs are sums of independent subpath costs (Propositions 4.1/4.2), and
// the model behaves monotonically in the knobs the formulas say it should.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/cost_matrix.h"
#include "core/optimizer.h"
#include "datagen/paper_schema.h"

namespace pathix {
namespace {

class ConfigCostPropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setup_ = MakeExample51Setup();
    ctx_ = std::make_unique<PathContext>(
        PathContext::Build(setup_.schema, setup_.path, setup_.catalog,
                           setup_.load)
            .value());
  }

  PaperSetup setup_;
  std::unique_ptr<PathContext> ctx_;
};

TEST_F(ConfigCostPropertyTest, EverySubpathCostIsFiniteAndNonNegative) {
  for (const Subpath& sp : EnumerateSubpaths(4)) {
    for (IndexOrg org : {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX,
                         IndexOrg::kNone}) {
      const SubpathCost c = ComputeSubpathCost(*ctx_, sp.start, sp.end, org);
      EXPECT_GE(c.query, 0) << ToString(sp) << " " << ToString(org);
      EXPECT_GE(c.prefix, 0);
      EXPECT_GE(c.maintain, 0);
      EXPECT_GE(c.boundary, 0);
      EXPECT_TRUE(std::isfinite(c.total()));
    }
  }
}

TEST_F(ConfigCostPropertyTest, MatrixEntriesEqualDirectComputation) {
  const CostMatrix m = CostMatrix::Build(*ctx_);
  for (const Subpath& sp : m.subpaths()) {
    for (IndexOrg org : m.orgs()) {
      EXPECT_DOUBLE_EQ(
          m.Cost(sp, org),
          ComputeSubpathCost(*ctx_, sp.start, sp.end, org).total());
    }
  }
}

TEST_F(ConfigCostPropertyTest, ConfigurationCostIsSumOfParts) {
  // Every composition's cost (as the optimizer computes it from the
  // matrix) equals the direct sum of its parts — Proposition 4.2.
  const CostMatrix m = CostMatrix::Build(*ctx_);
  for (std::uint32_t mask = 0; mask < 8; ++mask) {
    std::vector<Subpath> blocks;
    int start = 1;
    for (int i = 1; i < 4; ++i) {
      if (mask & (1u << (i - 1))) {
        blocks.push_back(Subpath{start, i});
        start = i + 1;
      }
    }
    blocks.push_back(Subpath{start, 4});
    double via_matrix = 0;
    double direct = 0;
    for (const Subpath& sp : blocks) {
      via_matrix += m.MinCost(sp);
      direct += ComputeSubpathCost(*ctx_, sp.start, sp.end, m.MinOrg(sp))
                    .total();
    }
    EXPECT_NEAR(via_matrix, direct, 1e-9) << "mask=" << mask;
  }
}

TEST_F(ConfigCostPropertyTest, CostsScaleLinearlyWithLoad) {
  // All costs are load-weighted sums: doubling every frequency doubles
  // every matrix entry.
  LoadDistribution doubled;
  for (ClassId cls : {setup_.person, setup_.vehicle, setup_.bus,
                      setup_.truck, setup_.company, setup_.division}) {
    const OpLoad l = setup_.load.Get(cls);
    doubled.Set(cls, 2 * l.query, 2 * l.insert, 2 * l.del);
  }
  const PathContext ctx2 = PathContext::Build(setup_.schema, setup_.path,
                                              setup_.catalog, doubled)
                               .value();
  const CostMatrix m1 = CostMatrix::Build(*ctx_);
  const CostMatrix m2 = CostMatrix::Build(ctx2);
  for (const Subpath& sp : m1.subpaths()) {
    for (IndexOrg org : m1.orgs()) {
      EXPECT_NEAR(m2.Cost(sp, org), 2 * m1.Cost(sp, org), 1e-9)
          << ToString(sp) << " " << ToString(org);
    }
  }
}

TEST_F(ConfigCostPropertyTest, MoreObjectsNeverCheapenAnIndex) {
  // Scaling the Person population up cannot reduce any cost involving the
  // Person level.
  PaperSetup big = MakeExample51Setup();
  ClassStats stats = big.catalog.GetClassStats(big.person);
  stats.n *= 4;
  stats.d *= 4;
  big.catalog.SetClassStats(big.person, stats);
  const PathContext big_ctx =
      PathContext::Build(big.schema, big.path, big.catalog, big.load).value();
  for (IndexOrg org : kPaperOrgs) {
    const double small_cost =
        ComputeSubpathCost(*ctx_, 1, 2, org).total();
    const double big_cost = ComputeSubpathCost(big_ctx, 1, 2, org).total();
    EXPECT_GE(big_cost, small_cost * 0.999) << ToString(org);
  }
}

TEST_F(ConfigCostPropertyTest, OptimumNeverExceedsAnyWholePathIndex) {
  const CostMatrix m = CostMatrix::Build(*ctx_);
  const OptimizeResult best = SelectExhaustive(m);
  for (IndexOrg org : m.orgs()) {
    EXPECT_LE(best.cost, m.Cost(Subpath{1, 4}, org) + 1e-9);
  }
}

TEST_F(ConfigCostPropertyTest, RandomLoadsKeepOptimizersInAgreement) {
  std::mt19937 rng(2718);
  std::uniform_real_distribution<double> f(0.0, 0.5);
  for (int trial = 0; trial < 20; ++trial) {
    LoadDistribution load;
    for (ClassId cls : {setup_.person, setup_.vehicle, setup_.bus,
                        setup_.truck, setup_.company, setup_.division}) {
      load.Set(cls, f(rng), f(rng), f(rng));
    }
    const PathContext ctx = PathContext::Build(setup_.schema, setup_.path,
                                               setup_.catalog, load)
                                .value();
    const CostMatrix m = CostMatrix::Build(ctx);
    const OptimizeResult bb = SelectBranchAndBound(m);
    const OptimizeResult ex = SelectExhaustive(m);
    const OptimizeResult dp = SelectDP(m);
    ASSERT_NEAR(bb.cost, ex.cost, 1e-9) << "trial " << trial;
    ASSERT_NEAR(dp.cost, ex.cost, 1e-9) << "trial " << trial;
  }
}

}  // namespace
}  // namespace pathix
