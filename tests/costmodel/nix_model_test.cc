// Dedicated tests of the NIX cost model's geometry and maintenance terms,
// parameterized over page sizes (the physical knob of DESIGN.md §4.6).

#include "costmodel/nix_model.h"

#include <gtest/gtest.h>

#include "costmodel/mix_model.h"
#include "datagen/paper_schema.h"

namespace pathix {
namespace {

class NIXModelTest : public ::testing::TestWithParam<double> {
 protected:
  void SetUp() override {
    setup_ = MakeExample51Setup();
    setup_.catalog.mutable_params()->page_size = GetParam();
    ctx_ = std::make_unique<PathContext>(
        PathContext::Build(setup_.schema, setup_.path, setup_.catalog,
                           setup_.load)
            .value());
  }

  PaperSetup setup_;
  std::unique_ptr<PathContext> ctx_;
};

TEST_P(NIXModelTest, PrimaryKeyedByEndingDistinct) {
  const NIXCostModel nix(*ctx_, 1, 4);
  EXPECT_DOUBLE_EQ(nix.primary().num_records(),
                   ctx_->DistinctKeysLevel(4));
}

TEST_P(NIXModelTest, SubpathPrimaryKeyedByBoundaryOids) {
  // NIX on [1,2] is keyed by Company oids: 1000 of them.
  const NIXCostModel nix(*ctx_, 1, 2);
  EXPECT_DOUBLE_EQ(nix.primary().num_records(), 1000);
}

TEST_P(NIXModelTest, AuxCoversNonRootObjects) {
  const NIXCostModel full(*ctx_, 1, 4);
  ASSERT_TRUE(full.has_aux());
  EXPECT_DOUBLE_EQ(full.aux().num_records(), 22000);  // Veh+Bus+Truck+Comp+Div
  const NIXCostModel prefix(*ctx_, 1, 2);
  ASSERT_TRUE(prefix.has_aux());
  EXPECT_DOUBLE_EQ(prefix.aux().num_records(), 20000);  // vehicle hierarchy
}

TEST_P(NIXModelTest, PartialReadNeverExceedsFullRecord) {
  const NIXCostModel nix(*ctx_, 1, 4);
  for (int l = 1; l <= 4; ++l) {
    const double q = nix.QueryCost(l, 0);
    EXPECT_GE(q, nix.primary().height() - 1);
    EXPECT_LE(q, nix.primary().height() - 1 + nix.primary().record_pages());
  }
}

TEST_P(NIXModelTest, DeepClassSlicesCostMoreToRead) {
  const NIXCostModel nix(*ctx_, 1, 4);
  // Person's slice (560 oids/key) dominates Division's (1 oid/key).
  EXPECT_GE(nix.QueryCost(1, 0), nix.QueryCost(4, 0));
}

TEST_P(NIXModelTest, DeletionDominatesInsertion) {
  const NIXCostModel nix(*ctx_, 1, 4);
  for (int l = 1; l <= 4; ++l) {
    for (int j = 0; j < ctx_->nc(l); ++j) {
      EXPECT_GE(nix.DeleteCost(l, j), nix.InsertCost(l, j) * 0.99)
          << "l=" << l << " j=" << j;
    }
  }
}

TEST_P(NIXModelTest, MidPathDeletionPaysParentPropagation) {
  const NIXCostModel nix(*ctx_, 1, 4);
  // Deleting a Company propagates through vehicle and person layers;
  // deleting a Person (the root) does not propagate upward.
  const double comp_extra =
      nix.DeleteCost(3, 0) - nix.InsertCost(3, 0);
  const double person_extra =
      nix.DeleteCost(1, 0) - nix.InsertCost(1, 0);
  EXPECT_GT(comp_extra, 0);
  // Person's delete/insert difference comes only from pmd vs pmi.
  EXPECT_GE(person_extra, 0);
}

TEST_P(NIXModelTest, BoundaryCostOnlyOnOidEndings) {
  const NIXCostModel mid(*ctx_, 1, 2);
  EXPECT_GT(mid.BoundaryDeleteCost(), 0);
  const NIXCostModel full(*ctx_, 1, 4);
  EXPECT_DOUBLE_EQ(full.BoundaryDeleteCost(), 0);
}

TEST_P(NIXModelTest, BoundaryCostIncludesDelpointBeyondRecordRemoval) {
  const NIXCostModel mid(*ctx_, 1, 2);
  const double record_removal =
      CMLWithPm(mid.primary(), mid.primary().record_pages());
  EXPECT_GT(mid.BoundaryDeleteCost(), record_removal);
}

TEST_P(NIXModelTest, LengthOneHasNoAuxAndMatchesMIXClosely) {
  const NIXCostModel nix(*ctx_, 3, 3);
  const MIXCostModel mix(*ctx_, 3, 3);
  EXPECT_FALSE(nix.has_aux());
  EXPECT_NEAR(nix.QueryCost(3, 0), mix.QueryCost(3, 0),
              1.0 + 0.1 * mix.QueryCost(3, 0));
}

TEST_P(NIXModelTest, StorageIncludesBothTrees) {
  const NIXCostModel nix(*ctx_, 1, 4);
  double primary_pages = 0;
  for (const BTreeLevelInfo& lvl : nix.primary().levels()) {
    primary_pages += lvl.pages;
  }
  EXPECT_GT(nix.StorageBytes(),
            primary_pages * ctx_->params().page_size * 0.99);
}

INSTANTIATE_TEST_SUITE_P(PageSizes, NIXModelTest,
                         ::testing::Values(512.0, 1024.0, 2048.0, 4096.0,
                                           8192.0),
                         [](const ::testing::TestParamInfo<double>& param) {
                           return "p" + std::to_string(
                                            static_cast<int>(param.param));
                         });

}  // namespace
}  // namespace pathix
