// Tests of the Section 6 extension organizations: nested index (NX) and
// path index (PX) as additional selection candidates.

#include <gtest/gtest.h>

#include <cmath>

#include "core/advisor.h"
#include "costmodel/nix_model.h"
#include "costmodel/nx_model.h"
#include "costmodel/px_model.h"
#include "datagen/paper_schema.h"
#include "exec/database.h"

namespace pathix {
namespace {

class NxPxModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setup_ = MakeExample51Setup();
    ctx_ = std::make_unique<PathContext>(
        PathContext::Build(setup_.schema, setup_.path, setup_.catalog,
                           setup_.load)
            .value());
  }

  PaperSetup setup_;
  std::unique_ptr<PathContext> ctx_;
};

TEST_F(NxPxModelTest, NXAnswersOnlyStartingClassQueries) {
  const NXCostModel nx(*ctx_, 1, 4);
  EXPECT_TRUE(std::isfinite(nx.QueryCost(1, 0)));
  EXPECT_TRUE(std::isinf(nx.QueryCost(2, 0)));
  EXPECT_TRUE(std::isinf(nx.QueryCost(3, 0)));
  EXPECT_TRUE(std::isinf(nx.QueryCost(4, 0)));
}

TEST_F(NxPxModelTest, NXBeatsNIXForRootQueries) {
  // Smaller records (starting-class oids only) -> cheaper probes.
  const NXCostModel nx(*ctx_, 1, 4);
  const NIXCostModel nix(*ctx_, 1, 4);
  EXPECT_LE(nx.QueryCost(1, 0), nix.QueryCost(1, 0) + 1e-9);
}

TEST_F(NxPxModelTest, NXInteriorMaintenancePaysTheScan) {
  const NXCostModel nx(*ctx_, 1, 4);
  // Interior updates must locate starting objects: the 200k-person segment
  // scan dwarfs the root-level maintenance by well over an order of
  // magnitude.
  EXPECT_GT(nx.DeleteCost(2, 0), 30 * nx.DeleteCost(1, 0));
}

TEST_F(NxPxModelTest, PXAnswersEveryClass) {
  const PXCostModel px(*ctx_, 1, 4);
  for (int l = 1; l <= 4; ++l) {
    EXPECT_TRUE(std::isfinite(px.QueryCost(l, 0))) << l;
  }
}

TEST_F(NxPxModelTest, PXStorageDominatesEveryOtherOrganization) {
  const PXCostModel px(*ctx_, 1, 4);
  for (IndexOrg org : kPaperOrgs) {
    const std::unique_ptr<OrgCostModel> other =
        MakeOrgCostModel(org, *ctx_, 1, 4);
    EXPECT_GT(px.StorageBytes(), other->StorageBytes()) << ToString(org);
  }
}

TEST_F(NxPxModelTest, FactoryAndToStringCoverTheExtensions) {
  EXPECT_STREQ(ToString(IndexOrg::kNX), "NX");
  EXPECT_STREQ(ToString(IndexOrg::kPX), "PX");
  EXPECT_NE(MakeOrgCostModel(IndexOrg::kNX, *ctx_, 1, 4), nullptr);
  EXPECT_NE(MakeOrgCostModel(IndexOrg::kPX, *ctx_, 2, 3), nullptr);
}

TEST_F(NxPxModelTest, AdvisorWithExtendedColumnsStillValid) {
  AdvisorOptions opts;
  opts.orgs = {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX, IndexOrg::kNX,
               IndexOrg::kPX};
  const Recommendation rec =
      AdviseIndexConfiguration(setup_.schema, setup_.path, setup_.catalog,
                               setup_.load, opts)
          .value();
  EXPECT_TRUE(rec.result.config.Validate(4).ok());
  EXPECT_TRUE(std::isfinite(rec.result.cost));
  // Figure 7's workload queries interior classes, so NX can never cover a
  // subpath containing them with load; the chosen configuration's cost can
  // only improve on the 3-organization optimum.
  const Recommendation base =
      AdviseIndexConfiguration(setup_.schema, setup_.path, setup_.catalog,
                               setup_.load)
          .value();
  EXPECT_LE(rec.result.cost, base.result.cost + 1e-9);
}

TEST_F(NxPxModelTest, NXWinsRootOnlyReadWorkloads) {
  LoadDistribution root_reads;
  root_reads.Set(setup_.person, 1.0, 0.0, 0.0);
  const PathContext ctx = PathContext::Build(setup_.schema, setup_.path,
                                             setup_.catalog, root_reads)
                              .value();
  const CostMatrix m = CostMatrix::Build(
      ctx, {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX, IndexOrg::kNX});
  // NX ties or beats every organization on a root-read-only load (with
  // page-granular costs it can tie NIX's partial reads exactly).
  const Subpath whole{1, 4};
  EXPECT_LE(m.Cost(whole, IndexOrg::kNX), m.MinCost(whole) + 1e-9);
  EXPECT_LT(m.Cost(whole, IndexOrg::kNX), m.Cost(whole, IndexOrg::kMX));
  EXPECT_LT(m.Cost(whole, IndexOrg::kNX), m.Cost(whole, IndexOrg::kMIX));
}

TEST_F(NxPxModelTest, InfiniteEntriesNeverWinRows) {
  const CostMatrix m = CostMatrix::Build(
      *ctx_, {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX, IndexOrg::kNX,
              IndexOrg::kPX});
  for (const Subpath& sp : m.subpaths()) {
    EXPECT_TRUE(std::isfinite(m.MinCost(sp))) << ToString(sp);
  }
}

TEST_F(NxPxModelTest, PhysicalLayerRejectsModelOnlyOrgs) {
  SimDatabase db(setup_.schema, PhysicalParams{});
  const Status s = db.ConfigureIndexes(
      setup_.path, IndexConfiguration({{Subpath{1, 4}, IndexOrg::kNX}}));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(NxPxModelTest, BoundaryCostsDefinedForBothExtensions) {
  const NXCostModel nx(*ctx_, 1, 2);
  const PXCostModel px(*ctx_, 1, 2);
  EXPECT_GT(nx.BoundaryDeleteCost(), 0);
  EXPECT_GT(px.BoundaryDeleteCost(), 0);
  const NXCostModel nx_full(*ctx_, 1, 4);
  EXPECT_DOUBLE_EQ(nx_full.BoundaryDeleteCost(), 0);
}

}  // namespace
}  // namespace pathix
