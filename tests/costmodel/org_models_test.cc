#include <gtest/gtest.h>

#include <memory>

#include "costmodel/mix_model.h"
#include "costmodel/mx_model.h"
#include "costmodel/nix_model.h"
#include "costmodel/none_model.h"
#include "costmodel/org_model.h"
#include "costmodel/subpath_cost.h"
#include "datagen/paper_schema.h"

namespace pathix {
namespace {

class OrgModelsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setup_ = MakeExample51Setup();
    Result<PathContext> ctx = PathContext::Build(setup_.schema, setup_.path,
                                                 setup_.catalog, setup_.load);
    ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
    ctx_ = std::make_unique<PathContext>(std::move(ctx).value());
  }

  PaperSetup setup_;
  std::unique_ptr<PathContext> ctx_;
};

// ---------------------------------------------------------------- MX / MIX

TEST_F(OrgModelsTest, MXQueryChainsThroughEveryScopeIndex) {
  const MXCostModel mx(*ctx_, 1, 4);
  // Cost w.r.t. Person must strictly exceed the cost w.r.t. Company: the
  // chain is longer (1 + sum nc_i lookups, Section 3.1).
  EXPECT_GT(mx.QueryCost(1, 0), mx.QueryCost(3, 0));
  EXPECT_GT(mx.QueryCost(3, 0), mx.QueryCost(4, 0));
}

TEST_F(OrgModelsTest, MXQueryAtEndingClassIsSingleLookup) {
  const MXCostModel mx(*ctx_, 1, 4);
  EXPECT_NEAR(mx.QueryCost(4, 0), CRL(mx.tree(4, 0)), 1e-9);
}

TEST_F(OrgModelsTest, MXHierarchyQueryCoversAllSubclassIndexes) {
  const MXCostModel mx(*ctx_, 2, 4);
  // w.r.t. the Vehicle hierarchy: three level-2 indexes instead of one.
  EXPECT_GT(mx.QueryCostHierarchy(2), mx.QueryCost(2, 0));
}

TEST_F(OrgModelsTest, MIXHierarchyQueryCostsSameAsSingleClass) {
  const MIXCostModel mix(*ctx_, 2, 4);
  // One inherited index serves the whole hierarchy: the MIX advantage.
  EXPECT_DOUBLE_EQ(mix.QueryCostHierarchy(2), mix.QueryCost(2, 1));
}

TEST_F(OrgModelsTest, MIXBeatsMXOnHierarchyQueries) {
  const MXCostModel mx(*ctx_, 2, 4);
  const MIXCostModel mix(*ctx_, 2, 4);
  EXPECT_LT(mix.QueryCostHierarchy(2), mx.QueryCostHierarchy(2));
}

TEST_F(OrgModelsTest, MXDeleteTouchesPreviousLevelIndexes) {
  const MXCostModel mx(*ctx_, 1, 4);
  // Deleting a Vehicle updates level-2 indexes plus Person's level-1 index.
  EXPECT_GT(mx.DeleteCost(2, 0), mx.InsertCost(2, 0));
  // Deleting a Person (subpath root) has no previous level inside.
  EXPECT_DOUBLE_EQ(mx.DeleteCost(1, 0), mx.InsertCost(1, 0));
}

TEST_F(OrgModelsTest, BoundaryCMDOnlyForReferenceEndings) {
  // Subpath [1,2] ends at `man` (reference): CMD applies.
  const MXCostModel cut(*ctx_, 1, 2);
  EXPECT_GT(cut.BoundaryDeleteCost(), 0);
  // The full path ends at the atomic `name`: no CMD.
  const MXCostModel full(*ctx_, 1, 4);
  EXPECT_DOUBLE_EQ(full.BoundaryDeleteCost(), 0);
}

// --------------------------------------------------------------------- NIX

TEST_F(OrgModelsTest, NIXQueryIsOneProbeRegardlessOfClass) {
  const NIXCostModel nix(*ctx_, 1, 4);
  // Every class resolves with the same single primary lookup (+- partial
  // record reads), so costs are within one record span of each other.
  const double q1 = nix.QueryCost(1, 0);
  const double q4 = nix.QueryCost(4, 0);
  EXPECT_GE(q1, q4);  // Person's slice is the biggest (560 oids)
  EXPECT_LE(q1 - q4, nix.primary().record_pages());
}

TEST_F(OrgModelsTest, NIXBeatsEveryoneOnDeepQueries) {
  const MXCostModel mx(*ctx_, 1, 4);
  const MIXCostModel mix(*ctx_, 1, 4);
  const NIXCostModel nix(*ctx_, 1, 4);
  EXPECT_LT(nix.QueryCost(1, 0), mix.QueryCost(1, 0));
  EXPECT_LT(mix.QueryCost(1, 0), mx.QueryCostHierarchy(1));
}

TEST_F(OrgModelsTest, NIXMaintenancePaysForPropagation) {
  const MXCostModel mx(*ctx_, 1, 4);
  const NIXCostModel nix(*ctx_, 1, 4);
  // Deleting a deep object (Division) must propagate through the auxiliary
  // index under NIX; MX only touches two index levels.
  EXPECT_GT(nix.DeleteCost(4, 0), mx.DeleteCost(4, 0));
}

TEST_F(OrgModelsTest, NIXLengthOneDegeneratesToInheritedIndex) {
  // Example 5.1: on a length-1 subpath NIX is organized as an IIX.
  const NIXCostModel nix(*ctx_, 2, 2);
  const MIXCostModel mix(*ctx_, 2, 2);
  EXPECT_FALSE(nix.has_aux());
  EXPECT_NEAR(nix.QueryCost(2, 0), mix.QueryCost(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(nix.DeleteCost(2, 0) - nix.InsertCost(2, 0), 0);
}

TEST_F(OrgModelsTest, NIXAuxiliaryCoversNonRootClasses) {
  const NIXCostModel nix(*ctx_, 1, 4);
  ASSERT_TRUE(nix.has_aux());
  // 3-tuples: levels 2..4 -> 10000+5000+5000+1000+1000 objects... levels
  // are Veh-hierarchy (20000), Comp (1000), Div (1000).
  EXPECT_DOUBLE_EQ(nix.aux().num_records(), 22000);
}

TEST_F(OrgModelsTest, NIXBoundaryDeleteIncludesDelpoint) {
  const NIXCostModel nix(*ctx_, 1, 2);
  const MIXCostModel mix(*ctx_, 1, 2);
  // CMD_NIX = CML + delpoint > CMD_MIX = CML (similar tree heights).
  EXPECT_GT(nix.BoundaryDeleteCost(), mix.BoundaryDeleteCost());
}

// ------------------------------------------------------------------- NONE

TEST_F(OrgModelsTest, NoneQueriesScanDownstreamPages) {
  const NoneCostModel none(*ctx_, 1, 4);
  const NIXCostModel nix(*ctx_, 1, 4);
  EXPECT_GT(none.QueryCost(1, 0), 100 * nix.QueryCost(1, 0));
  EXPECT_DOUBLE_EQ(none.InsertCost(2, 0), 0);
  EXPECT_DOUBLE_EQ(none.DeleteCost(2, 0), 0);
  EXPECT_DOUBLE_EQ(none.BoundaryDeleteCost(), 0);
}

// ------------------------------------------------------------ subpath cost

TEST_F(OrgModelsTest, SubpathCostDecomposes) {
  const SubpathCost c = ComputeSubpathCost(*ctx_, 2, 4, IndexOrg::kMIX);
  EXPECT_GT(c.query, 0);
  EXPECT_GT(c.prefix, 0);    // Person's queries traverse this subpath
  EXPECT_GT(c.maintain, 0);
  EXPECT_DOUBLE_EQ(c.boundary, 0);  // ends at A_n
  EXPECT_NEAR(c.total(), c.query + c.prefix + c.maintain + c.boundary, 1e-12);
}

TEST_F(OrgModelsTest, FirstSubpathHasNoPrefixLoad) {
  const SubpathCost c = ComputeSubpathCost(*ctx_, 1, 2, IndexOrg::kMX);
  EXPECT_DOUBLE_EQ(c.prefix, 0);
  EXPECT_GT(c.boundary, 0);  // Company deletions remove key records
}

TEST_F(OrgModelsTest, FactoryCoversAllOrganizations) {
  for (IndexOrg org : {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX,
                       IndexOrg::kNone}) {
    const std::unique_ptr<OrgCostModel> m = MakeOrgCostModel(org, *ctx_, 1, 4);
    ASSERT_NE(m, nullptr);
    EXPECT_GE(m->QueryCost(1, 0), 0);
    EXPECT_GE(m->StorageBytes(), 0);
  }
}

TEST_F(OrgModelsTest, StorageFootprintsArePositiveForRealIndexes) {
  for (IndexOrg org : kPaperOrgs) {
    const std::unique_ptr<OrgCostModel> m = MakeOrgCostModel(org, *ctx_, 1, 4);
    EXPECT_GT(m->StorageBytes(), 0) << ToString(org);
  }
}

}  // namespace
}  // namespace pathix
