#include "costmodel/path_context.h"

#include <gtest/gtest.h>

#include "datagen/paper_schema.h"

namespace pathix {
namespace {

class PathContextTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setup_ = MakeExample51Setup();
    Result<PathContext> ctx = PathContext::Build(setup_.schema, setup_.path,
                                                 setup_.catalog, setup_.load);
    ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
    ctx_ = std::make_unique<PathContext>(std::move(ctx).value());
  }

  PaperSetup setup_;
  std::unique_ptr<PathContext> ctx_;
};

TEST_F(PathContextTest, LevelsFollowThePath) {
  ASSERT_EQ(ctx_->n(), 4);
  EXPECT_EQ(ctx_->nc(1), 1);  // Person
  EXPECT_EQ(ctx_->nc(2), 3);  // Vehicle, Bus, Truck
  EXPECT_EQ(ctx_->nc(3), 1);  // Company
  EXPECT_EQ(ctx_->nc(4), 1);  // Division
  EXPECT_EQ(ctx_->level(2)[0].cls, setup_.vehicle);
  EXPECT_EQ(ctx_->level(2)[1].cls, setup_.bus);
  EXPECT_EQ(ctx_->level(2)[2].cls, setup_.truck);
}

TEST_F(PathContextTest, FanInsMatchFigure7) {
  // k = n * nin / d: Per 10, Veh 6, Bus 4, Truck 4, Comp 4, Div 1.
  EXPECT_DOUBLE_EQ(ctx_->level(1)[0].k, 10);
  EXPECT_DOUBLE_EQ(ctx_->level(2)[0].k, 6);
  EXPECT_DOUBLE_EQ(ctx_->level(2)[1].k, 4);
  EXPECT_DOUBLE_EQ(ctx_->level(2)[2].k, 4);
  EXPECT_DOUBLE_EQ(ctx_->level(3)[0].k, 4);
  EXPECT_DOUBLE_EQ(ctx_->level(4)[0].k, 1);
}

TEST_F(PathContextTest, SelectivityProducts) {
  // S(1)=10, S(2)=14, S(3)=4, S(4)=1.
  EXPECT_DOUBLE_EQ(ctx_->S(1), 10);
  EXPECT_DOUBLE_EQ(ctx_->S(2), 14);
  EXPECT_DOUBLE_EQ(ctx_->S(3), 4);
  EXPECT_DOUBLE_EQ(ctx_->S(4), 1);
  // noid+_{n+1} = 1 (equality predicate); noid+ multiplies upward.
  EXPECT_DOUBLE_EQ(ctx_->noidplus(5), 1);
  EXPECT_DOUBLE_EQ(ctx_->noidplus(4), 1);
  EXPECT_DOUBLE_EQ(ctx_->noidplus(3), 4);
  EXPECT_DOUBLE_EQ(ctx_->noidplus(2), 56);
  EXPECT_DOUBLE_EQ(ctx_->noidplus(1), 560);
  // noid_{l,j} = k_{l,j} * noid+_{l+1}.
  EXPECT_DOUBLE_EQ(ctx_->noid(1, 0), 560);
  EXPECT_DOUBLE_EQ(ctx_->noid(2, 0), 24);
  EXPECT_DOUBLE_EQ(ctx_->noid(4, 0), 1);
}

TEST_F(PathContextTest, WithinSubpathProductsStopAtB) {
  // Subpath [1,2]: noid within for Person = k_1 * S(2) = 140.
  EXPECT_DOUBLE_EQ(ctx_->NoidWithin(1, 0, 2), 140);
  // Level 2 classes keyed directly by A_2 values: just k.
  EXPECT_DOUBLE_EQ(ctx_->NoidWithin(2, 0, 2), 6);
}

TEST_F(PathContextTest, KeyLengthsFollowAttributeKind) {
  EXPECT_DOUBLE_EQ(ctx_->KeyLenAt(1), ctx_->params().oid_len);
  EXPECT_DOUBLE_EQ(ctx_->KeyLenAt(4), ctx_->params().key_len);
}

TEST_F(PathContextTest, DistinctKeysClampedByDomainPopulation) {
  // Level 2 (man): sum d = 10000 but only 1000 Company objects exist.
  EXPECT_DOUBLE_EQ(ctx_->DistinctKeysLevel(2), 1000);
  // Level 4 (name, atomic): d = 1000.
  EXPECT_DOUBLE_EQ(ctx_->DistinctKeysLevel(4), 1000);
}

TEST_F(PathContextTest, NbarBaseCaseIsNin) {
  EXPECT_DOUBLE_EQ(ctx_->Nbar(4, 0, 4), 1);
  EXPECT_DOUBLE_EQ(ctx_->Nbar(3, 0, 3), 4);
  EXPECT_DOUBLE_EQ(ctx_->Nbar(2, 0, 2), 3);
}

TEST_F(PathContextTest, NbarMultipliesReachability) {
  // From Company through divs to name: 4 divisions, 1 name each -> 4.
  EXPECT_DOUBLE_EQ(ctx_->Nbar(3, 0, 4), 4);
  // From Vehicle: 3 manufacturers * 4 = 12.
  EXPECT_DOUBLE_EQ(ctx_->Nbar(2, 0, 4), 12);
}

TEST_F(PathContextTest, NbarClampedByDistinctEndingValues) {
  // Reachability can never exceed the number of distinct A_b values.
  for (int l = 1; l <= 4; ++l) {
    for (int j = 0; j < ctx_->nc(l); ++j) {
      EXPECT_LE(ctx_->Nbar(l, j, 4), ctx_->DistinctKeysLevel(4));
    }
  }
}

TEST_F(PathContextTest, PrefixAlphaAccumulates) {
  EXPECT_DOUBLE_EQ(ctx_->PrefixAlpha(1), 0.0);
  EXPECT_DOUBLE_EQ(ctx_->PrefixAlpha(2), 0.3);
  EXPECT_NEAR(ctx_->PrefixAlpha(3), 0.3 + 0.35, 1e-12);
  EXPECT_NEAR(ctx_->PrefixAlpha(4), 0.3 + 0.35 + 0.1, 1e-12);
}

TEST_F(PathContextTest, ParentsIsPreviousLevelFanIn) {
  EXPECT_DOUBLE_EQ(ctx_->Parents(2), 10);
  EXPECT_DOUBLE_EQ(ctx_->Parents(3), 14);
  EXPECT_DOUBLE_EQ(ctx_->Parents(4), 4);
}

TEST_F(PathContextTest, MissingStatsWithLoadFails) {
  Catalog empty_catalog;
  Result<PathContext> ctx = PathContext::Build(setup_.schema, setup_.path,
                                               empty_catalog, setup_.load);
  EXPECT_FALSE(ctx.ok());
  EXPECT_EQ(ctx.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace pathix
