// The range-predicate extension (Section 3: "The extension to range
// predicates is straightforward"): a predicate matching m ending values
// seeds noid+_{n+1} = m and scales every retrieval term.

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "datagen/paper_schema.h"

namespace pathix {
namespace {

class RangePredicateTest : public ::testing::Test {
 protected:
  PathContext Ctx(double matching_keys) {
    return PathContext::Build(setup_.schema, setup_.path, setup_.catalog,
                              setup_.load, QueryProfile{matching_keys})
        .value();
  }
  PaperSetup setup_ = MakeExample51Setup();
};

TEST_F(RangePredicateTest, MatchingKeysSeedTheSelectivityRecursion) {
  const PathContext eq = Ctx(1);
  const PathContext range = Ctx(10);
  EXPECT_DOUBLE_EQ(eq.noidplus(5), 1);
  EXPECT_DOUBLE_EQ(range.noidplus(5), 10);
  EXPECT_DOUBLE_EQ(range.noidplus(1), 10 * eq.noidplus(1));
}

TEST_F(RangePredicateTest, InvalidMatchingKeysRejected) {
  Result<PathContext> bad =
      PathContext::Build(setup_.schema, setup_.path, setup_.catalog,
                         setup_.load, QueryProfile{0.5});
  EXPECT_FALSE(bad.ok());
}

TEST_F(RangePredicateTest, WiderPredicatesCostMoreEverywhere) {
  const PathContext eq = Ctx(1);
  const PathContext range = Ctx(20);
  for (IndexOrg org : kPaperOrgs) {
    const double eq_cost = ComputeSubpathCost(eq, 1, 4, org).total();
    const double range_cost = ComputeSubpathCost(range, 1, 4, org).total();
    EXPECT_GT(range_cost, eq_cost) << ToString(org);
  }
}

TEST_F(RangePredicateTest, MaintenanceIsUnaffectedByPredicateWidth) {
  const PathContext eq = Ctx(1);
  const PathContext range = Ctx(20);
  for (IndexOrg org : kPaperOrgs) {
    const SubpathCost a = ComputeSubpathCost(eq, 1, 4, org);
    const SubpathCost b = ComputeSubpathCost(range, 1, 4, org);
    EXPECT_NEAR(a.maintain, b.maintain, 1e-9) << ToString(org);
    EXPECT_NEAR(a.boundary, b.boundary, 1e-9) << ToString(org);
  }
}

TEST_F(RangePredicateTest, AdvisorAcceptsProfiles) {
  AdvisorOptions opts;
  opts.query_profile.matching_keys = 25;
  const Recommendation rec =
      AdviseIndexConfiguration(setup_.schema, setup_.path, setup_.catalog,
                               setup_.load, opts)
          .value();
  EXPECT_TRUE(rec.result.config.Validate(4).ok());
  // A 25-key range still leaves NIX ahead for the query-heavy prefix: one
  // probe per key vs a widening chain.
  const Recommendation eq =
      AdviseIndexConfiguration(setup_.schema, setup_.path, setup_.catalog,
                               setup_.load)
          .value();
  EXPECT_GT(rec.result.cost, eq.result.cost);
}

TEST_F(RangePredicateTest, OptimizersAgreeUnderRangeLoads) {
  for (double keys : {1.0, 5.0, 50.0}) {
    const PathContext ctx = Ctx(keys);
    const CostMatrix m = CostMatrix::Build(ctx);
    EXPECT_NEAR(SelectBranchAndBound(m).cost, SelectExhaustive(m).cost, 1e-9)
        << keys;
    EXPECT_NEAR(SelectDP(m).cost, SelectExhaustive(m).cost, 1e-9) << keys;
  }
}

}  // namespace
}  // namespace pathix
