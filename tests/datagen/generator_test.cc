#include "datagen/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "datagen/paper_schema.h"

namespace pathix {
namespace {

TEST(GeneratorTest, HitsObjectCounts) {
  PaperSetup setup = MakeExample51Setup();
  SimDatabase db(setup.schema, PhysicalParams{});
  PathDataGenerator gen(42);
  auto created = gen.Populate(&db, setup.path,
                              {
                                  {setup.division, 25, 10, 1.0},
                                  {setup.company, 20, 0, 2.0},
                                  {setup.vehicle, 30, 0, 1.0},
                                  {setup.person, 50, 0, 2.0},
                              });
  EXPECT_EQ(created[setup.division].size(), 25u);
  EXPECT_EQ(created[setup.company].size(), 20u);
  EXPECT_EQ(created[setup.vehicle].size(), 30u);
  EXPECT_EQ(created[setup.person].size(), 50u);
  EXPECT_EQ(db.store().live_objects(), 125u);
}

TEST(GeneratorTest, EndingValuesComeFromPool) {
  PaperSetup setup = MakeExample51Setup();
  SimDatabase db(setup.schema, PhysicalParams{});
  PathDataGenerator gen(42);
  auto created = gen.Populate(&db, setup.path,
                              {{setup.division, 200, 7, 1.0}});
  std::set<std::string> seen;
  for (Oid oid : created[setup.division]) {
    for (const Value& v : db.store().Peek(oid)->values("name")) {
      seen.insert(v.as_string());
    }
  }
  EXPECT_LE(seen.size(), 7u);
  EXPECT_GE(seen.size(), 5u);  // 200 draws over 7 values covers most
}

TEST(GeneratorTest, ReferencesPointAtLiveNextLevelObjects) {
  PaperSetup setup = MakeExample51Setup();
  SimDatabase db(setup.schema, PhysicalParams{});
  PathDataGenerator gen(43);
  auto created = gen.Populate(&db, setup.path,
                              {
                                  {setup.division, 10, 5, 1.0},
                                  {setup.company, 10, 0, 1.5},
                                  {setup.vehicle, 10, 0, 1.0},
                                  {setup.bus, 10, 0, 2.0},
                                  {setup.person, 20, 0, 1.0},
                              });
  for (Oid oid : created[setup.person]) {
    const std::vector<Oid> owns = db.store().Peek(oid)->refs("owns");
    ASSERT_FALSE(owns.empty());
    for (Oid ref : owns) {
      const Object* target = db.store().Peek(ref);
      ASSERT_NE(target, nullptr);
      EXPECT_TRUE(db.schema().IsSameOrSubclassOf(target->cls, setup.vehicle));
    }
  }
}

TEST(GeneratorTest, AverageFanOutApproximatesNin) {
  PaperSetup setup = MakeExample51Setup();
  SimDatabase db(setup.schema, PhysicalParams{});
  PathDataGenerator gen(44);
  auto created = gen.Populate(&db, setup.path,
                              {
                                  {setup.division, 10, 5, 1.0},
                                  {setup.company, 400, 0, 2.5},
                              });
  double total = 0;
  for (Oid oid : created[setup.company]) {
    total += db.store().Peek(oid)->refs("divs").size();
  }
  EXPECT_NEAR(total / 400.0, 2.5, 0.2);
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  PaperSetup setup = MakeExample51Setup();
  auto run = [&](std::uint32_t seed) {
    SimDatabase db(setup.schema, PhysicalParams{});
    PathDataGenerator gen(seed);
    gen.Populate(&db, setup.path,
                 {{setup.division, 20, 5, 1.0}, {setup.company, 20, 0, 2.0}});
    std::vector<Oid> shape;
    for (Oid oid : db.store().PeekAll(setup.company)) {
      for (Oid ref : db.store().Peek(oid)->refs("divs")) {
        shape.push_back(ref);
      }
    }
    return shape;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(GeneratorTest, LoadingResetsCounters) {
  PaperSetup setup = MakeExample51Setup();
  SimDatabase db(setup.schema, PhysicalParams{});
  PathDataGenerator gen(45);
  gen.Populate(&db, setup.path, {{setup.division, 50, 5, 1.0}});
  EXPECT_EQ(db.pager().stats().total(), 0u);
}

}  // namespace
}  // namespace pathix
