#include "exec/analyze.h"

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "datagen/paper_schema.h"
#include "exec/database.h"

namespace pathix {
namespace {

class AnalyzeTest : public ::testing::Test {
 protected:
  AnalyzeTest() : setup_(MakeExample51Setup()),
                  db_(setup_.schema, PhysicalParams{}) {}

  PaperSetup setup_;
  SimDatabase db_;
};

TEST_F(AnalyzeTest, CountsMatchThePopulation) {
  PathDataGenerator gen(5);
  gen.Populate(&db_, setup_.path,
               {
                   {setup_.division, 30, 10, 1.0},
                   {setup_.company, 20, 0, 2.0},
                   {setup_.vehicle, 40, 0, 1.0},
                   {setup_.person, 80, 0, 1.0},
               });
  const Catalog catalog = CollectStatistics(db_.store(), setup_.schema,
                                            setup_.path, PhysicalParams{});
  EXPECT_DOUBLE_EQ(catalog.GetClassStats(setup_.division).n, 30);
  EXPECT_DOUBLE_EQ(catalog.GetClassStats(setup_.company).n, 20);
  EXPECT_DOUBLE_EQ(catalog.GetClassStats(setup_.vehicle).n, 40);
  EXPECT_DOUBLE_EQ(catalog.GetClassStats(setup_.person).n, 80);
  // Unpopulated subclasses exist with zero objects.
  EXPECT_DOUBLE_EQ(catalog.GetClassStats(setup_.bus).n, 0);
}

TEST_F(AnalyzeTest, DistinctAndFanOutFollowTheData) {
  PathDataGenerator gen(6);
  gen.Populate(&db_, setup_.path,
               {
                   {setup_.division, 200, 10, 1.0},
                   {setup_.company, 100, 0, 3.0},
               });
  const Catalog catalog = CollectStatistics(db_.store(), setup_.schema,
                                            setup_.path, PhysicalParams{});
  const ClassStats div = catalog.GetClassStats(setup_.division);
  EXPECT_LE(div.d, 10);
  EXPECT_GE(div.d, 8);  // 200 draws over 10 values
  EXPECT_DOUBLE_EQ(div.nin, 1);
  const ClassStats comp = catalog.GetClassStats(setup_.company);
  EXPECT_NEAR(comp.nin, 3.0, 0.01);  // integral nin is exact
  EXPECT_GT(comp.obj_len, 8);
}

TEST_F(AnalyzeTest, DanglingReferencesAreIgnored) {
  const Oid d1 =
      db_.Insert(setup_.division, {{"name", {Value::Str("alpha")}}});
  const Oid d2 =
      db_.Insert(setup_.division, {{"name", {Value::Str("beta")}}});
  db_.Insert(setup_.company,
             {{"divs", {Value::Ref(d1), Value::Ref(d2)}}});
  CheckOk(db_.store().Delete(d2));
  const Catalog catalog = CollectStatistics(db_.store(), setup_.schema,
                                            setup_.path, PhysicalParams{});
  const ClassStats comp = catalog.GetClassStats(setup_.company);
  // Only the live reference counts towards d and nin.
  EXPECT_DOUBLE_EQ(comp.d, 1);
  EXPECT_DOUBLE_EQ(comp.nin, 1);
}

TEST_F(AnalyzeTest, CollectedStatsDriveTheAdvisor) {
  PathDataGenerator gen(7);
  gen.Populate(&db_, setup_.path,
               {
                   {setup_.division, 50, 25, 1.0},
                   {setup_.company, 40, 0, 2.0},
                   {setup_.vehicle, 60, 0, 1.5},
                   {setup_.bus, 30, 0, 1.0},
                   {setup_.truck, 30, 0, 1.0},
                   {setup_.person, 300, 0, 1.5},
               });
  const Catalog catalog = CollectStatistics(db_.store(), setup_.schema,
                                            setup_.path, PhysicalParams{});
  Result<PathContext> ctx = PathContext::Build(setup_.schema, setup_.path,
                                               catalog, setup_.load);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
  // Derived statistics are finite and positive end to end.
  for (int l = 1; l <= 4; ++l) {
    EXPECT_GT(ctx.value().S(l), 0) << l;
  }
  EXPECT_GT(ctx.value().noidplus(1), 0);
}

}  // namespace
}  // namespace pathix
