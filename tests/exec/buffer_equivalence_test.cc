// The buffer pool is a pure accounting device: enabling it must never
// change query results or index contents, only the counted page traffic.

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "datagen/paper_schema.h"
#include "exec/database.h"

namespace pathix {
namespace {

TEST(BufferEquivalenceTest, ResultsIdenticalWithAndWithoutBuffer) {
  const PaperSetup setup = MakeExample51Setup();
  SimDatabase db(setup.schema, PhysicalParams{});
  PathDataGenerator gen(321);
  gen.Populate(&db, setup.path,
               {
                   {setup.division, 30, 15, 1.0},
                   {setup.company, 30, 0, 2.0},
                   {setup.vehicle, 60, 0, 1.5},
                   {setup.bus, 30, 0, 1.0},
                   {setup.person, 400, 0, 1.5},
               });
  CheckOk(db.ConfigureIndexes(
      setup.path, IndexConfiguration({{Subpath{1, 2}, IndexOrg::kNIX},
                                      {Subpath{3, 4}, IndexOrg::kMX}})));

  for (int i = 0; i < 15; ++i) {
    const Key value = Key::FromString(EndingValue(i));
    db.pager().EnableBuffer(0);
    const std::vector<Oid> cold = db.Query(value, setup.person).value();
    db.pager().EnableBuffer(64);
    const std::vector<Oid> warm = db.Query(value, setup.person).value();
    EXPECT_EQ(cold, warm) << i;
  }
  db.pager().EnableBuffer(0);
  CheckOk(db.ValidateIndexesDeep());
}

TEST(BufferEquivalenceTest, WarmRepeatIsCheaperThanCold) {
  const PaperSetup setup = MakeExample51Setup();
  SimDatabase db(setup.schema, PhysicalParams{});
  PathDataGenerator gen(654);
  gen.Populate(&db, setup.path,
               {
                   {setup.division, 30, 15, 1.0},
                   {setup.company, 30, 0, 2.0},
                   {setup.vehicle, 120, 0, 1.5},
                   {setup.person, 800, 0, 1.5},
               });
  CheckOk(db.ConfigureIndexes(
      setup.path, IndexConfiguration({{Subpath{1, 4}, IndexOrg::kMIX}})));
  const Key value = Key::FromString(EndingValue(3));

  db.pager().ResetStats();
  CheckOk(db.Query(value, setup.person).status());
  const std::uint64_t cold = db.pager().stats().total();

  db.pager().EnableBuffer(256);
  CheckOk(db.Query(value, setup.person).status());  // warms the pool
  db.pager().ResetStats();
  CheckOk(db.Query(value, setup.person).status());
  const std::uint64_t warm = db.pager().stats().total();
  EXPECT_LT(warm, cold);
  EXPECT_GT(db.pager().stats().buffer_hits, 0u);
}

TEST(BufferEquivalenceTest, MaintenanceStaysCorrectUnderBuffering) {
  const PaperSetup setup = MakeExample51Setup();
  SimDatabase db(setup.schema, PhysicalParams{});
  const Oid d = db.Insert(setup.division, {{"name", {Value::Str("x")}}});
  const Oid c = db.Insert(setup.company, {{"divs", {Value::Ref(d)}}});
  const Oid v = db.Insert(setup.vehicle, {{"man", {Value::Ref(c)}}});
  const Oid p = db.Insert(setup.person, {{"owns", {Value::Ref(v)}}});
  CheckOk(db.ConfigureIndexes(
      setup.path, IndexConfiguration({{Subpath{1, 4}, IndexOrg::kNIX}})));
  db.pager().EnableBuffer(32);
  CheckOk(db.Delete(v));
  CheckOk(db.ValidateIndexesDeep());
  EXPECT_TRUE(db.Query(Key::FromString("x"), setup.person).value().empty());
  (void)p;
}

}  // namespace
}  // namespace pathix
