// The buffer pool is a pure accounting device: enabling it must never
// change query results or index contents, only the counted page traffic.

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "datagen/paper_schema.h"
#include "exec/database.h"

namespace pathix {
namespace {

TEST(BufferEquivalenceTest, ResultsIdenticalWithAndWithoutBuffer) {
  const PaperSetup setup = MakeExample51Setup();
  SimDatabase db(setup.schema, PhysicalParams{});
  PathDataGenerator gen(321);
  gen.Populate(&db, setup.path,
               {
                   {setup.division, 30, 15, 1.0},
                   {setup.company, 30, 0, 2.0},
                   {setup.vehicle, 60, 0, 1.5},
                   {setup.bus, 30, 0, 1.0},
                   {setup.person, 400, 0, 1.5},
               });
  CheckOk(db.ConfigureIndexes(
      setup.path, IndexConfiguration({{Subpath{1, 2}, IndexOrg::kNIX},
                                      {Subpath{3, 4}, IndexOrg::kMX}})));

  for (int i = 0; i < 15; ++i) {
    const Key value = Key::FromString(EndingValue(i));
    db.pager().EnableBuffer(0);
    const std::vector<Oid> cold = db.Query(value, setup.person).value();
    db.pager().EnableBuffer(64);
    const std::vector<Oid> warm = db.Query(value, setup.person).value();
    EXPECT_EQ(cold, warm) << i;
  }
  db.pager().EnableBuffer(0);
  CheckOk(db.ValidateIndexesDeep());
}

TEST(BufferEquivalenceTest, WarmRepeatIsCheaperThanCold) {
  const PaperSetup setup = MakeExample51Setup();
  SimDatabase db(setup.schema, PhysicalParams{});
  PathDataGenerator gen(654);
  gen.Populate(&db, setup.path,
               {
                   {setup.division, 30, 15, 1.0},
                   {setup.company, 30, 0, 2.0},
                   {setup.vehicle, 120, 0, 1.5},
                   {setup.person, 800, 0, 1.5},
               });
  CheckOk(db.ConfigureIndexes(
      setup.path, IndexConfiguration({{Subpath{1, 4}, IndexOrg::kMIX}})));
  const Key value = Key::FromString(EndingValue(3));

  db.pager().ResetStats();
  CheckOk(db.Query(value, setup.person).status());
  const std::uint64_t cold = db.pager().stats().total();

  db.pager().EnableBuffer(256);
  CheckOk(db.Query(value, setup.person).status());  // warms the pool
  db.pager().ResetStats();
  CheckOk(db.Query(value, setup.person).status());
  const std::uint64_t warm = db.pager().stats().total();
  EXPECT_LT(warm, cold);
  EXPECT_GT(db.pager().stats().buffer_hits, 0u);
}

// Eviction order end to end: a pool too small for the query's working set
// must keep charging real reads (CLOCK evicts between touches), while a
// pool that covers it turns the repeat into hits — eviction is observable
// through nothing but the counters.
TEST(BufferEquivalenceTest, TinyPoolThrashesWhereBigPoolHits) {
  const PaperSetup setup = MakeExample51Setup();
  SimDatabase db(setup.schema, PhysicalParams{});
  PathDataGenerator gen(654);
  gen.Populate(&db, setup.path,
               {
                   {setup.division, 30, 15, 1.0},
                   {setup.company, 30, 0, 2.0},
                   {setup.vehicle, 120, 0, 1.5},
                   {setup.person, 800, 0, 1.5},
               });
  CheckOk(db.ConfigureIndexes(
      setup.path, IndexConfiguration({{Subpath{1, 4}, IndexOrg::kMIX}})));
  const Key value = Key::FromString(EndingValue(3));

  db.pager().EnableBuffer(1);
  CheckOk(db.Query(value, setup.person).status());  // "warms" one frame
  db.pager().ResetStats();
  CheckOk(db.Query(value, setup.person).status());
  const AccessStats tiny = db.pager().stats();

  db.pager().EnableBuffer(0);  // drop the frame
  db.pager().EnableBuffer(256);
  CheckOk(db.Query(value, setup.person).status());
  db.pager().ResetStats();
  CheckOk(db.Query(value, setup.person).status());
  const AccessStats big = db.pager().stats();

  EXPECT_GT(tiny.reads, big.reads);
  EXPECT_LT(tiny.buffer_hits, big.buffer_hits);
}

// A pinned frame survives arbitrary cross-traffic evictions; releasing the
// guard makes it an ordinary victim again.
TEST(BufferEquivalenceTest, PinBlocksEvictionUntilReleased) {
  Pager pager(4096);
  pager.EnableBuffer(2);
  PageGuard root = pager.PinRead(1);
  ASSERT_TRUE(root.pinned());
  pager.NoteRead(2);  // cross traffic cycles through the other frame
  pager.NoteRead(3);
  pager.NoteRead(4);
  EXPECT_TRUE(pager.buffer_pool().Resident(1));
  pager.NoteRead(1);
  EXPECT_EQ(pager.stats().buffer_hits, 1u);  // the pin kept it resident
  root.Release();
  pager.NoteRead(5);  // now 1 is evictable like anything else
  EXPECT_FALSE(pager.buffer_pool().Resident(1));
}

// Dirty write-back through real operations: repeated inserts dirty the
// same slot pages, the pool absorbs the repeats, and disabling it
// surfaces each distinct dirty page once.
TEST(BufferEquivalenceTest, WriteBackAbsorbsRepeatedSlotWrites) {
  const PaperSetup setup = MakeExample51Setup();
  SimDatabase cold(setup.schema, PhysicalParams{});
  SimDatabase warm(setup.schema, PhysicalParams{});
  warm.pager().EnableBuffer(64);
  for (int i = 0; i < 20; ++i) {
    cold.Insert(setup.person, {});
    warm.Insert(setup.person, {});
  }
  const std::uint64_t cold_writes = cold.pager().stats().writes;
  const std::uint64_t live_writes = warm.pager().stats().writes;
  EXPECT_LT(live_writes, cold_writes);

  warm.pager().EnableBuffer(0);  // flush: dirty pages become real writes
  const std::uint64_t settled = warm.pager().stats().writes;
  EXPECT_GT(settled, live_writes);
  EXPECT_LE(settled, cold_writes);  // repeats collapsed into one write-back
  EXPECT_GT(warm.pager().buffer_pool().GetStats().writebacks, 0u);
  EXPECT_EQ(warm.store().live_objects(), cold.store().live_objects());
}

TEST(BufferEquivalenceTest, MaintenanceStaysCorrectUnderBuffering) {
  const PaperSetup setup = MakeExample51Setup();
  SimDatabase db(setup.schema, PhysicalParams{});
  const Oid d = db.Insert(setup.division, {{"name", {Value::Str("x")}}});
  const Oid c = db.Insert(setup.company, {{"divs", {Value::Ref(d)}}});
  const Oid v = db.Insert(setup.vehicle, {{"man", {Value::Ref(c)}}});
  const Oid p = db.Insert(setup.person, {{"owns", {Value::Ref(v)}}});
  CheckOk(db.ConfigureIndexes(
      setup.path, IndexConfiguration({{Subpath{1, 4}, IndexOrg::kNIX}})));
  db.pager().EnableBuffer(32);
  CheckOk(db.Delete(v));
  CheckOk(db.ValidateIndexesDeep());
  EXPECT_TRUE(db.Query(Key::FromString("x"), setup.person).value().empty());
  (void)p;
}

}  // namespace
}  // namespace pathix
