#include "exec/database.h"

#include <gtest/gtest.h>

#include "datagen/paper_schema.h"

namespace pathix {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest()
      : setup_(MakeExample51Setup()), db_(setup_.schema, PhysicalParams{}) {}

  Oid MakeChain(const std::string& name) {
    const Oid d = db_.Insert(setup_.division, {{"name", {Value::Str(name)}}});
    const Oid c = db_.Insert(setup_.company, {{"divs", {Value::Ref(d)}}});
    const Oid v = db_.Insert(setup_.vehicle, {{"man", {Value::Ref(c)}}});
    return db_.Insert(setup_.person, {{"owns", {Value::Ref(v)}}});
  }

  PaperSetup setup_;
  SimDatabase db_;
};

TEST_F(DatabaseTest, QueryWithoutIndexesFails) {
  Result<std::vector<Oid>> r =
      db_.Query(Key::FromString("x"), setup_.person);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(db_.QueryNaive(Key::FromString("x"), setup_.person).ok());
}

TEST_F(DatabaseTest, DeleteUnknownOidFails) {
  EXPECT_EQ(db_.Delete(4242).code(), StatusCode::kNotFound);
}

TEST_F(DatabaseTest, ConfigureRejectsInvalidConfiguration) {
  const Status s = db_.ConfigureIndexes(
      setup_.path, IndexConfiguration({{Subpath{1, 3}, IndexOrg::kMX}}));
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(db_.has_indexes());
}

TEST_F(DatabaseTest, ConfigureRejectsModelOnlyOrganizations) {
  const Status s = db_.ConfigureIndexes(
      setup_.path, IndexConfiguration({{Subpath{1, 4}, IndexOrg::kPX}}));
  EXPECT_FALSE(s.ok());
}

TEST_F(DatabaseTest, NoneSubpathEvaluatesNavigationally) {
  const Oid p = MakeChain("nav");
  // Hybrid: no index on the prefix, MX on the tail (the paper's "no index
  // on a subpath" extension, physically realized by scanning).
  CheckOk(db_.ConfigureIndexes(
      setup_.path, IndexConfiguration({{Subpath{1, 2}, IndexOrg::kNone},
                                       {Subpath{3, 4}, IndexOrg::kMX}})));
  EXPECT_EQ(db_.Query(Key::FromString("nav"), setup_.person).value(),
            (std::vector<Oid>{p}));
  // The scan must charge at least the person segment's pages.
  db_.pager().ResetStats();
  CheckOk(db_.Query(Key::FromString("nav"), setup_.person).status());
  EXPECT_GE(db_.pager().stats().reads,
            db_.store().SegmentPages(setup_.person));
}

TEST_F(DatabaseTest, ReconfigurationReplacesIndexes) {
  const Oid p = MakeChain("alpha");
  CheckOk(db_.ConfigureIndexes(
      setup_.path, IndexConfiguration({{Subpath{1, 4}, IndexOrg::kMIX}})));
  EXPECT_EQ(db_.Query(Key::FromString("alpha"), setup_.person).value(),
            (std::vector<Oid>{p}));
  // Replace MIX by the paper's split; queries still work.
  CheckOk(db_.ConfigureIndexes(
      setup_.path, IndexConfiguration({{Subpath{1, 2}, IndexOrg::kNIX},
                                       {Subpath{3, 4}, IndexOrg::kMX}})));
  EXPECT_EQ(db_.Query(Key::FromString("alpha"), setup_.person).value(),
            (std::vector<Oid>{p}));
  EXPECT_EQ(db_.physical().indexes().size(), 2u);
}

TEST_F(DatabaseTest, InsertsAfterConfigurationAreVisible) {
  CheckOk(db_.ConfigureIndexes(
      setup_.path, IndexConfiguration({{Subpath{1, 2}, IndexOrg::kNIX},
                                       {Subpath{3, 4}, IndexOrg::kMX}})));
  const Oid p = MakeChain("beta");
  EXPECT_EQ(db_.Query(Key::FromString("beta"), setup_.person).value(),
            (std::vector<Oid>{p}));
  CheckOk(db_.ValidateIndexesDeep());
}

TEST_F(DatabaseTest, ObjectsOffThePathAreIgnoredByIndexes) {
  CheckOk(db_.ConfigureIndexes(
      setup_.path, IndexConfiguration({{Subpath{1, 4}, IndexOrg::kMIX}})));
  // A free-standing Division insertion maintains only the level-4 index;
  // an object of a class outside the schema path would be skipped. Here we
  // check an unrelated attribute-only object (Division without references
  // to it) keeps everything consistent.
  db_.Insert(setup_.division, {{"name", {Value::Str("loner")}}});
  CheckOk(db_.ValidateIndexesDeep());
  EXPECT_TRUE(
      db_.Query(Key::FromString("loner"), setup_.person).value().empty());
  EXPECT_EQ(
      db_.Query(Key::FromString("loner"), setup_.division).value().size(),
      1u);
}

TEST_F(DatabaseTest, QueryCountsOnlyIndexPages) {
  const Oid p = MakeChain("gamma");
  (void)p;
  CheckOk(db_.ConfigureIndexes(
      setup_.path, IndexConfiguration({{Subpath{1, 4}, IndexOrg::kNIX}})));
  db_.pager().ResetStats();
  CheckOk(db_.Query(Key::FromString("gamma"), setup_.person).status());
  // Tiny database: a NIX lookup is one or two page reads, no writes.
  EXPECT_LE(db_.pager().stats().reads, 3u);
  EXPECT_EQ(db_.pager().stats().writes, 0u);
}

TEST_F(DatabaseTest, SubclassQueriesRespectHierarchyFlag) {
  const Oid d = db_.Insert(setup_.division, {{"name", {Value::Str("x")}}});
  const Oid c = db_.Insert(setup_.company, {{"divs", {Value::Ref(d)}}});
  const Oid bus = db_.Insert(setup_.bus, {{"man", {Value::Ref(c)}}});
  CheckOk(db_.ConfigureIndexes(
      setup_.path, IndexConfiguration({{Subpath{1, 4}, IndexOrg::kMIX}})));
  // w.r.t. Vehicle without subclasses: the Bus is not a Vehicle instance.
  EXPECT_TRUE(db_.Query(Key::FromString("x"), setup_.vehicle, false)
                  .value()
                  .empty());
  EXPECT_EQ(db_.Query(Key::FromString("x"), setup_.vehicle, true).value(),
            (std::vector<Oid>{bus}));
  EXPECT_EQ(db_.Query(Key::FromString("x"), setup_.bus, false).value(),
            (std::vector<Oid>{bus}));
}

}  // namespace
}  // namespace pathix
