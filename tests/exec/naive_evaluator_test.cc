#include "exec/naive_evaluator.h"

#include <gtest/gtest.h>

#include "datagen/paper_schema.h"
#include "exec/database.h"

namespace pathix {
namespace {

class NaiveEvaluatorTest : public ::testing::Test {
 protected:
  NaiveEvaluatorTest()
      : setup_(MakeExample51Setup()), db_(setup_.schema, PhysicalParams{}) {
    d1_ = db_.Insert(setup_.division, {{"name", {Value::Str("alpha")}}});
    d2_ = db_.Insert(setup_.division, {{"name", {Value::Str("beta")}}});
    c1_ = db_.Insert(setup_.company, {{"divs", {Value::Ref(d1_)}}});
    c2_ = db_.Insert(setup_.company, {{"divs", {Value::Ref(d2_)}}});
    v1_ = db_.Insert(setup_.vehicle, {{"man", {Value::Ref(c1_)}}});
    b1_ = db_.Insert(setup_.bus, {{"man", {Value::Ref(c2_)}}});
    p1_ = db_.Insert(setup_.person, {{"owns", {Value::Ref(v1_)}}});
    p2_ = db_.Insert(setup_.person, {{"owns", {Value::Ref(b1_)}}});
    eval_ = std::make_unique<NaiveEvaluator>(&db_.store(), &setup_.schema,
                                             &setup_.path);
  }

  std::vector<Oid> Run(const std::string& value, ClassId target,
                       bool subclasses = false) {
    return eval_->Evaluate(Key::FromString(value), target, subclasses,
                           &db_.pager());
  }

  PaperSetup setup_;
  SimDatabase db_;
  std::unique_ptr<NaiveEvaluator> eval_;
  Oid d1_, d2_, c1_, c2_, v1_, b1_, p1_, p2_;
};

TEST_F(NaiveEvaluatorTest, FindsOwnersThroughTheWholePath) {
  EXPECT_EQ(Run("alpha", setup_.person), (std::vector<Oid>{p1_}));
  EXPECT_EQ(Run("beta", setup_.person), (std::vector<Oid>{p2_}));
  EXPECT_TRUE(Run("gamma", setup_.person).empty());
}

TEST_F(NaiveEvaluatorTest, EvaluatesMidPathClasses) {
  EXPECT_EQ(Run("alpha", setup_.vehicle), (std::vector<Oid>{v1_}));
  EXPECT_TRUE(Run("alpha", setup_.bus).empty());
  EXPECT_EQ(Run("beta", setup_.bus), (std::vector<Oid>{b1_}));
  EXPECT_EQ(Run("alpha", setup_.division), (std::vector<Oid>{d1_}));
}

TEST_F(NaiveEvaluatorTest, SubclassFlagWidensTheScan) {
  EXPECT_TRUE(Run("beta", setup_.vehicle, false).empty());
  EXPECT_EQ(Run("beta", setup_.vehicle, true), (std::vector<Oid>{b1_}));
}

TEST_F(NaiveEvaluatorTest, DanglingReferencesAreSkipped) {
  CheckOk(db_.store().Delete(c1_));
  EXPECT_TRUE(Run("alpha", setup_.person).empty());
  // The other chain is untouched.
  EXPECT_EQ(Run("beta", setup_.person), (std::vector<Oid>{p2_}));
}

TEST_F(NaiveEvaluatorTest, PagesChargedOncePerQuery) {
  db_.pager().ResetStats();
  Run("alpha", setup_.person);
  const std::uint64_t first = db_.pager().stats().reads;
  // Everything fits a handful of pages; each charged at most once.
  EXPECT_GT(first, 0u);
  EXPECT_LE(first, 8u);
}

TEST_F(NaiveEvaluatorTest, SharedChildrenAreMemoized) {
  // Two more persons owning the same vehicle: the vehicle's page is charged
  // once, not three times.
  db_.Insert(setup_.person, {{"owns", {Value::Ref(v1_)}}});
  db_.Insert(setup_.person, {{"owns", {Value::Ref(v1_)}}});
  db_.pager().ResetStats();
  const std::vector<Oid> owners = Run("alpha", setup_.person);
  EXPECT_EQ(owners.size(), 3u);
  EXPECT_LE(db_.pager().stats().reads, 8u);
}

TEST_F(NaiveEvaluatorTest, MultiValuedPathsAnyMatchSemantics) {
  // A person owning vehicles from both companies matches both values.
  const Oid p3 = db_.Insert(
      setup_.person, {{"owns", {Value::Ref(v1_), Value::Ref(b1_)}}});
  EXPECT_EQ(Run("alpha", setup_.person), (std::vector<Oid>{p1_, p3}));
  EXPECT_EQ(Run("beta", setup_.person), (std::vector<Oid>{p2_, p3}));
}

}  // namespace
}  // namespace pathix
