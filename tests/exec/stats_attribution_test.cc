#include <gtest/gtest.h>

#include "costmodel/path_context.h"
#include "exec/analyze.h"
#include "exec/database.h"

// Regression: catalog statistics must be keyed by (class, path attribute),
// not class alone. Two paths navigating the same class through different
// attributes see different d/nin; with class-keyed stats, whichever path's
// update stream refreshed last overwrote the other's view and both cost
// models silently used the loser's fan-out.

namespace pathix {
namespace {

class StatsAttributionTest : public ::testing::Test {
 protected:
  StatsAttributionTest() {
    company_ = schema_.AddClass("Company").value();
    division_ = schema_.AddClass("Division").value();
    CheckOk(schema_.AddReferenceAttribute(company_, "divs", division_,
                                          /*multi_valued=*/true));
    CheckOk(schema_.AddAtomicAttribute(division_, "name",
                                       AtomicType::kString));
    CheckOk(schema_.AddAtomicAttribute(division_, "location",
                                       AtomicType::kString));
    by_name_ = Path::Create(schema_, company_, {"divs", "name"}).value();
    by_location_ =
        Path::Create(schema_, company_, {"divs", "location"}).value();
  }

  Schema schema_;
  ClassId company_ = kInvalidClass;
  ClassId division_ = kInvalidClass;
  Path by_name_;
  Path by_location_;
};

TEST_F(StatsAttributionTest, TwoPathsThroughOneClassKeepTheirOwnStats) {
  SimDatabase db(schema_, PhysicalParams{});
  // 12 divisions: 2 distinct names, 6 distinct locations — the same class
  // has d = 2 w.r.t. "name" and d = 6 w.r.t. "location".
  std::vector<Value> refs;
  for (int i = 0; i < 12; ++i) {
    const Oid oid = db.Insert(
        division_, {{"name", {Value::Str(i % 2 == 0 ? "north" : "south")}},
                    {"location", {Value::Str("city-" + std::to_string(i % 6))}}});
    refs.push_back(Value::Ref(oid));
  }
  db.Insert(company_, {{"divs", refs}});

  // Each path's update stream refreshes the shared catalog in turn; the
  // "location" stream lands last.
  Catalog catalog = CollectStatistics(db.store(), schema_, by_name_,
                                      PhysicalParams{});
  RefreshStatistics(db.store(), schema_, by_location_, {division_}, &catalog,
                    nullptr);

  // Attribute-keyed lookups keep both views intact.
  EXPECT_DOUBLE_EQ(catalog.GetClassStats(division_, "name").d, 2);
  EXPECT_DOUBLE_EQ(catalog.GetClassStats(division_, "location").d, 6);

  // The cost model resolves each path's level through its own attribute:
  // distinct keys at the ending level differ between the two paths even
  // though the class is the same.
  const LoadDistribution no_load;
  Result<PathContext> ctx_name =
      PathContext::Build(schema_, by_name_, catalog, no_load);
  Result<PathContext> ctx_location =
      PathContext::Build(schema_, by_location_, catalog, no_load);
  ASSERT_TRUE(ctx_name.ok()) << ctx_name.status().ToString();
  ASSERT_TRUE(ctx_location.ok()) << ctx_location.status().ToString();
  EXPECT_DOUBLE_EQ(ctx_name.value().DistinctKeysLevel(2), 2);
  EXPECT_DOUBLE_EQ(ctx_location.value().DistinctKeysLevel(2), 6);
}

TEST_F(StatsAttributionTest, ClassKeyedFallbackServesUnrefreshedAttributes) {
  SimDatabase db(schema_, PhysicalParams{});
  const Oid oid = db.Insert(division_, {{"name", {Value::Str("solo")}},
                                        {"location", {Value::Str("here")}}});
  db.Insert(company_, {{"divs", {Value::Ref(oid)}}});

  // A catalog fed only class-keyed stats (spec files, the paper's canned
  // setups) answers attribute-keyed lookups through the fallback.
  Catalog catalog;
  ClassStats canned;
  canned.n = 7;
  canned.d = 3;
  catalog.SetClassStats(division_, canned);
  EXPECT_TRUE(catalog.HasClassStats(division_, "name"));
  EXPECT_DOUBLE_EQ(catalog.GetClassStats(division_, "name").n, 7);
  EXPECT_DOUBLE_EQ(catalog.GetClassStats(division_, "name").d, 3);

  // Once an attribute-keyed entry exists it wins over the fallback.
  ClassStats collected;
  collected.n = 1;
  collected.d = 1;
  catalog.SetClassStats(division_, "name", collected);
  EXPECT_DOUBLE_EQ(catalog.GetClassStats(division_, "name").n, 1);
  EXPECT_DOUBLE_EQ(catalog.GetClassStats(division_, "location").n, 7);
}

}  // namespace
}  // namespace pathix
