// Randomized stress of the paged B+-tree across page sizes: mixed
// insert/mutate/remove workloads, string and integer keys, records that
// oscillate across the overflow threshold. Invariants are re-validated
// continuously and final contents checked against a reference map.

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "index/btree.h"

namespace pathix {
namespace {

class BTreeFuzzTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BTreeFuzzTest, MixedWorkloadKeepsInvariants) {
  Pager pager(GetParam());
  PostingTree tree(&pager, "fuzz");
  std::mt19937 rng(GetParam() * 31 + 7);
  std::map<std::string, std::size_t> reference;  // key -> posting count

  auto key_of = [](int i) { return "k" + std::to_string(i); };

  for (int step = 0; step < 4000; ++step) {
    const int ki = static_cast<int>(rng() % 150);
    const Key key = Key::FromString(key_of(ki));
    switch (rng() % 4) {
      case 0:
      case 1: {  // add a posting (insert-heavy mix)
        tree.Upsert(
            key,
            [&] {
              PostingRecord rec;
              rec.key_value = key;
              return rec;
            },
            [&](PostingRecord* rec) {
              rec->postings.push_back(
                  Posting{0, static_cast<Oid>(step + 1), 1});
            });
        reference[key_of(ki)] += 1;
        break;
      }
      case 2: {  // shrink a record
        tree.Mutate(key, [&](PostingRecord* rec) {
          if (!rec->postings.empty()) rec->postings.pop_back();
        });
        auto it = reference.find(key_of(ki));
        if (it != reference.end() && it->second > 0) it->second -= 1;
        break;
      }
      case 3: {  // drop the record
        tree.Remove(key);
        reference.erase(key_of(ki));
        break;
      }
    }
    if (step % 500 == 499) {
      ASSERT_TRUE(tree.ValidateStructure().ok())
          << "page=" << GetParam() << " step=" << step << ": "
          << tree.ValidateStructure().ToString();
    }
  }

  ASSERT_TRUE(tree.ValidateStructure().ok());
  EXPECT_EQ(tree.num_records(), reference.size());
  for (const auto& [k, count] : reference) {
    const PostingRecord* rec = tree.Peek(Key::FromString(k));
    ASSERT_NE(rec, nullptr) << k;
    EXPECT_EQ(rec->postings.size(), count) << k;
  }
  // Key order is total and ascending.
  std::string prev;
  bool first = true;
  tree.ForEach([&](const PostingRecord& rec) {
    const std::string cur = rec.key_value.ToString();
    if (!first) {
      EXPECT_LT(prev, cur);
    }
    prev = cur;
    first = false;
  });
}

TEST_P(BTreeFuzzTest, AuxTreeSurvivesChurn) {
  Pager pager(GetParam());
  AuxTree tree(&pager, "aux-fuzz");
  std::mt19937 rng(GetParam());
  std::map<Oid, std::size_t> reference;  // oid -> pointer count
  for (int step = 0; step < 2000; ++step) {
    const Oid oid = 1 + rng() % 80;
    const Key key = Key::FromOid(oid);
    if (rng() % 3 != 0) {
      tree.Upsert(
          key,
          [&] {
            AuxRecord rec;
            rec.key_value = key;
            return rec;
          },
          [&](AuxRecord* rec) {
            rec->primary_keys.insert(
                Key::FromString("v" + std::to_string(step % 37)));
            rec->parents.push_back(step);
          });
      reference[oid] = 1;  // presence marker
    } else {
      tree.Remove(key);
      reference.erase(oid);
    }
  }
  ASSERT_TRUE(tree.ValidateStructure().ok())
      << tree.ValidateStructure().ToString();
  EXPECT_EQ(tree.num_records(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(PageSizes, BTreeFuzzTest,
                         ::testing::Values(160, 256, 512, 1024, 4096),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "p" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace pathix
