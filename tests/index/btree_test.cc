#include "index/btree.h"

#include <gtest/gtest.h>

#include <map>
#include <random>

namespace pathix {
namespace {

PostingRecord Rec(std::int64_t key, int n_postings) {
  PostingRecord rec;
  rec.key_value = Key::FromInt(key);
  for (int i = 0; i < n_postings; ++i) {
    rec.postings.push_back(Posting{0, static_cast<Oid>(100 + i), 1});
  }
  return rec;
}

class BTreeTest : public ::testing::Test {
 protected:
  Pager pager_{256};  // small pages force splits quickly
  PostingTree tree_{&pager_, "t"};
};

TEST_F(BTreeTest, EmptyTree) {
  EXPECT_EQ(tree_.height(), 1);
  EXPECT_EQ(tree_.num_records(), 0u);
  EXPECT_EQ(tree_.Lookup(Key::FromInt(1)), nullptr);
  EXPECT_TRUE(tree_.ValidateStructure().ok());
}

TEST_F(BTreeTest, InsertAndLookup) {
  tree_.Upsert(Key::FromInt(5), [] { return Rec(5, 1); },
               [](PostingRecord*) {});
  const PostingRecord* rec = tree_.Lookup(Key::FromInt(5));
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->postings.size(), 1u);
  EXPECT_EQ(tree_.num_records(), 1u);
}

TEST_F(BTreeTest, LookupCountsHeightPages) {
  for (int i = 0; i < 200; ++i) {
    tree_.Upsert(Key::FromInt(i), [&] { return Rec(i, 1); },
                 [](PostingRecord*) {});
  }
  ASSERT_GT(tree_.height(), 1);
  pager_.ResetStats();
  tree_.Lookup(Key::FromInt(42));
  EXPECT_EQ(pager_.stats().reads, static_cast<std::uint64_t>(tree_.height()));
  EXPECT_EQ(pager_.stats().writes, 0u);
}

TEST_F(BTreeTest, SplitsKeepOrderAndStructure) {
  std::mt19937 rng(7);
  std::vector<int> keys(500);
  for (int i = 0; i < 500; ++i) keys[i] = i;
  std::shuffle(keys.begin(), keys.end(), rng);
  for (int k : keys) {
    tree_.Upsert(Key::FromInt(k), [&] { return Rec(k, 2); },
                 [](PostingRecord*) {});
  }
  EXPECT_EQ(tree_.num_records(), 500u);
  EXPECT_TRUE(tree_.ValidateStructure().ok())
      << tree_.ValidateStructure().ToString();
  EXPECT_GE(tree_.height(), 3);
  // Everything findable.
  for (int k : keys) {
    ASSERT_NE(tree_.Peek(Key::FromInt(k)), nullptr) << k;
  }
  // Key order via ForEach.
  std::int64_t prev = -1;
  tree_.ForEach([&](const PostingRecord& rec) {
    const std::int64_t cur = std::stoll(rec.key_value.ToString());
    EXPECT_GT(cur, prev);
    prev = cur;
  });
}

TEST_F(BTreeTest, MatchesReferenceMapUnderRandomOps) {
  std::mt19937 rng(99);
  std::map<int, int> reference;  // key -> posting count
  for (int step = 0; step < 3000; ++step) {
    const int k = static_cast<int>(rng() % 120);
    const int op = static_cast<int>(rng() % 3);
    if (op == 0 || reference.find(k) == reference.end()) {
      tree_.Upsert(Key::FromInt(k), [&] { return Rec(k, 0); },
                   [&](PostingRecord* rec) {
                     rec->postings.push_back(
                         Posting{0, static_cast<Oid>(step), 1});
                   });
      reference[k] += 1;
    } else if (op == 1) {
      tree_.Mutate(Key::FromInt(k), [&](PostingRecord* rec) {
        if (!rec->postings.empty()) rec->postings.pop_back();
      });
      if (reference[k] > 0) reference[k] -= 1;
    } else {
      tree_.Remove(Key::FromInt(k));
      reference.erase(k);
    }
  }
  ASSERT_TRUE(tree_.ValidateStructure().ok());
  for (const auto& [k, count] : reference) {
    const PostingRecord* rec = tree_.Peek(Key::FromInt(k));
    ASSERT_NE(rec, nullptr) << k;
    EXPECT_EQ(rec->postings.size(), static_cast<std::size_t>(count)) << k;
  }
  EXPECT_EQ(tree_.num_records(), reference.size());
}

TEST_F(BTreeTest, RemoveAbsentKeyIsFalse) {
  EXPECT_FALSE(tree_.Remove(Key::FromInt(1)));
  tree_.Upsert(Key::FromInt(1), [] { return Rec(1, 1); },
               [](PostingRecord*) {});
  EXPECT_TRUE(tree_.Remove(Key::FromInt(1)));
  EXPECT_EQ(tree_.num_records(), 0u);
}

TEST_F(BTreeTest, MultiPageRecordGetsOverflowChain) {
  // 256-byte pages; 30 postings * 16B = 480B record -> 2-page chain.
  tree_.Upsert(Key::FromInt(1), [] { return Rec(1, 30); },
               [](PostingRecord*) {});
  EXPECT_GE(tree_.leaf_pages(), 3u);  // leaf node + 2 chain pages
  pager_.ResetStats();
  tree_.Lookup(Key::FromInt(1));
  // Full read: height + chain.
  EXPECT_EQ(pager_.stats().reads,
            static_cast<std::uint64_t>(tree_.height()) + 2);
}

TEST_F(BTreeTest, PartialReadStopsEarly) {
  tree_.Upsert(Key::FromInt(1), [] { return Rec(1, 30); },
               [](PostingRecord*) {});
  pager_.ResetStats();
  tree_.LookupPartial(Key::FromInt(1), 100);  // one page is enough
  EXPECT_EQ(pager_.stats().reads,
            static_cast<std::uint64_t>(tree_.height()) + 1);
}

TEST_F(BTreeTest, StubRecordsDoNotBlockSplits) {
  // Interleave big and small records; structure must stay valid.
  for (int i = 0; i < 60; ++i) {
    const int postings = (i % 7 == 0) ? 40 : 2;
    tree_.Upsert(Key::FromInt(i), [&] { return Rec(i, postings); },
                 [](PostingRecord*) {});
  }
  EXPECT_TRUE(tree_.ValidateStructure().ok())
      << tree_.ValidateStructure().ToString();
  for (int i = 0; i < 60; ++i) {
    ASSERT_NE(tree_.Peek(Key::FromInt(i)), nullptr);
  }
}

TEST_F(BTreeTest, GrowingARecordPastAPageRebalances) {
  for (int i = 0; i < 10; ++i) {
    tree_.Upsert(Key::FromInt(i), [&] { return Rec(i, 2); },
                 [](PostingRecord*) {});
  }
  // Grow record 5 far past the page size through repeated mutation.
  for (int g = 0; g < 50; ++g) {
    tree_.Mutate(Key::FromInt(5), [&](PostingRecord* rec) {
      rec->postings.push_back(Posting{0, static_cast<Oid>(1000 + g), 1});
    });
  }
  EXPECT_TRUE(tree_.ValidateStructure().ok())
      << tree_.ValidateStructure().ToString();
  const PostingRecord* rec = tree_.Peek(Key::FromInt(5));
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->postings.size(), 52u);
}

TEST_F(BTreeTest, AuxTreeRoundTrip) {
  AuxTree aux(&pager_, "aux");
  const Key k = Key::FromOid(42);
  aux.Upsert(
      k,
      [&] {
        AuxRecord rec;
        rec.key_value = k;
        return rec;
      },
      [](AuxRecord* rec) {
        rec->primary_keys.insert(Key::FromString("fiat"));
        rec->parents.push_back(7);
      });
  const AuxRecord* rec = aux.Lookup(k);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->primary_keys.size(), 1u);
  EXPECT_EQ(rec->parents, (std::vector<Oid>{7}));
}

TEST(BTreeKeyTest, OrderingAcrossKinds) {
  EXPECT_TRUE(Key::FromInt(1) < Key::FromInt(2));
  EXPECT_TRUE(Key::FromString("a") < Key::FromString("b"));
  EXPECT_TRUE(Key::FromOid(5) == Key::FromOid(5));
  EXPECT_FALSE(Key::FromOid(5) == Key::FromInt(5));  // kinds differ
  EXPECT_EQ(Key::FromValue(Value::Ref(9)), Key::FromOid(9));
  EXPECT_EQ(Key::FromValue(Value::Str("x")), Key::FromString("x"));
}

}  // namespace
}  // namespace pathix
