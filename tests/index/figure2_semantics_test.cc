// Paper-fidelity tests: Section 2.2 defines each organization by example on
// the Figure 2 instances (Vehicle[i] White, Vehicle[j]/Vehicle[k] Red, a Bus
// and a Truck, persons owning them, companies manufacturing them). This
// suite rebuilds equivalent instances and asserts the *record contents* each
// organization produces — SIX on one class, IIX covering the hierarchy, MX
// splitting per class, MIX grouping per level, NIX inverting the whole path.

#include <gtest/gtest.h>

#include "datagen/paper_schema.h"
#include "exec/database.h"
#include "index/mix_index.h"
#include "index/mx_index.h"
#include "index/nix_index.h"
#include "index/single_index.h"

namespace pathix {
namespace {

class Figure2Fixture : public ::testing::Test {
 protected:
  Figure2Fixture()
      : setup_(MakeExample51Setup()), db_(setup_.schema, PhysicalParams{}) {
    // Companies (Fiat-like, Renault-like, Daf-like) with divisions.
    div_a_ = db_.Insert(setup_.division, {{"name", {Value::Str("alpha")}}});
    div_b_ = db_.Insert(setup_.division, {{"name", {Value::Str("beta")}}});
    comp_i_ = db_.Insert(setup_.company, {{"name", {Value::Str("Renault")}},
                                          {"divs", {Value::Ref(div_a_)}}});
    comp_j_ = db_.Insert(setup_.company, {{"name", {Value::Str("Fiat")}},
                                          {"divs", {Value::Ref(div_b_)}}});
    // Vehicles: Vehicle[i] White by Renault; Vehicle[j] Red by Fiat;
    // Bus[i] Red by Fiat; Truck[i] White by Fiat.
    veh_i_ = db_.Insert(setup_.vehicle, {{"color", {Value::Str("White")}},
                                         {"man", {Value::Ref(comp_i_)}}});
    veh_j_ = db_.Insert(setup_.vehicle, {{"color", {Value::Str("Red")}},
                                         {"man", {Value::Ref(comp_j_)}}});
    bus_i_ = db_.Insert(setup_.bus, {{"color", {Value::Str("Red")}},
                                     {"man", {Value::Ref(comp_j_)}}});
    truck_i_ = db_.Insert(setup_.truck, {{"color", {Value::Str("White")}},
                                         {"man", {Value::Ref(comp_j_)}}});
    // Persons.
    per_o_ = db_.Insert(setup_.person, {{"owns", {Value::Ref(veh_i_)}}});
    per_p_ = db_.Insert(setup_.person, {{"owns", {Value::Ref(bus_i_)}}});
    per_q_ = db_.Insert(setup_.person,
                        {{"owns", {Value::Ref(veh_j_), Value::Ref(truck_i_)}}});
  }

  SubpathIndexContext Ctx(int a, int b) {
    SubpathIndexContext ctx;
    ctx.schema = &setup_.schema;
    ctx.path = &setup_.path;
    ctx.range = Subpath{a, b};
    return ctx;
  }

  PaperSetup setup_;
  SimDatabase db_;
  Oid div_a_, div_b_, comp_i_, comp_j_;
  Oid veh_i_, veh_j_, bus_i_, truck_i_;
  Oid per_o_, per_p_, per_q_;
};

TEST_F(Figure2Fixture, SIXIndexesOneClassOnly) {
  // "An index on the attribute color of the class Veh results into the
  // pairs (White, {Vehicle[i]}) and (Red, {Vehicle[j]...})" — the Bus and
  // Truck are NOT included by a simple index.
  AttrIndex six(&db_.pager(), "six.color");
  for (Oid oid : db_.store().PeekAll(setup_.vehicle)) {
    for (const Value& v : db_.store().Peek(oid)->values("color")) {
      six.AddEntryUncounted(Key::FromValue(v), setup_.vehicle, oid);
    }
  }
  const std::vector<Posting> white = six.Lookup(Key::FromString("White"));
  ASSERT_EQ(white.size(), 1u);
  EXPECT_EQ(white[0].oid, veh_i_);
  const std::vector<Posting> red = six.Lookup(Key::FromString("Red"));
  ASSERT_EQ(red.size(), 1u);
  EXPECT_EQ(red[0].oid, veh_j_);
}

TEST_F(Figure2Fixture, IIXCoversTheWholeHierarchy) {
  // "Allocating an inherited index on the attribute color of the class Veh
  // ... pairs (White, {Vehicle[i], Truck[i]}) and (Red, {Vehicle[j],
  // Bus[i]})" (modulo the scan's garbled oids).
  AttrIndex iix(&db_.pager(), "iix.color");
  for (ClassId cls : setup_.schema.HierarchyOf(setup_.vehicle)) {
    for (Oid oid : db_.store().PeekAll(cls)) {
      for (const Value& v : db_.store().Peek(oid)->values("color")) {
        iix.AddEntryUncounted(Key::FromValue(v), cls, oid);
      }
    }
  }
  const std::vector<Posting> white = iix.Lookup(Key::FromString("White"));
  ASSERT_EQ(white.size(), 2u);
  const std::vector<Posting> red = iix.Lookup(Key::FromString("Red"));
  ASSERT_EQ(red.size(), 2u);
}

TEST_F(Figure2Fixture, MXSplitsManufacturerIndexPerClass) {
  // "an MX on this path results into ... an index on man of the classes
  // Veh, Bus and Truck [each] and an index on the attribute owns".
  MXIndex mx(&db_.pager(), Ctx(1, 2));  // Per.owns.man
  mx.Build(db_.store());
  // Fiat's company oid keys three separate per-class records.
  const PostingRecord* veh_rec =
      mx.tree_for(2, setup_.vehicle)->tree().Peek(Key::FromOid(comp_j_));
  const PostingRecord* bus_rec =
      mx.tree_for(2, setup_.bus)->tree().Peek(Key::FromOid(comp_j_));
  const PostingRecord* truck_rec =
      mx.tree_for(2, setup_.truck)->tree().Peek(Key::FromOid(comp_j_));
  ASSERT_NE(veh_rec, nullptr);
  ASSERT_NE(bus_rec, nullptr);
  ASSERT_NE(truck_rec, nullptr);
  EXPECT_EQ(veh_rec->postings.size(), 1u);
  EXPECT_EQ(bus_rec->postings.size(), 1u);
  EXPECT_EQ(truck_rec->postings.size(), 1u);
}

TEST_F(Figure2Fixture, MIXGroupsTheHierarchyInOneRecord) {
  // "a multi-inherited index ... an index on man of the class Veh and its
  // subclasses: (Company[j], {(Vehicle[k], Bus[i], Truck[i])})".
  MIXIndex mix(&db_.pager(), Ctx(1, 2));
  mix.Build(db_.store());
  const PostingRecord* rec =
      mix.tree_for(2)->tree().Peek(Key::FromOid(comp_j_));
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->postings.size(), 3u);  // Vehicle[j], Bus[i], Truck[i]
}

TEST_F(Figure2Fixture, MXOwnsIndexMapsVehiclesToOwners) {
  // "(Vehicle[i], {Person[o]}), ... (Truck[i], {Person[q]}), (Bus[i],
  // {Person[p]})".
  MXIndex mx(&db_.pager(), Ctx(1, 2));
  mx.Build(db_.store());
  AttrIndex* owns = mx.tree_for(1, setup_.person);
  ASSERT_NE(owns, nullptr);
  const PostingRecord* rec = owns->tree().Peek(Key::FromOid(bus_i_));
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->postings.size(), 1u);
  EXPECT_EQ(rec->postings[0].oid, per_p_);
  const PostingRecord* rec2 = owns->tree().Peek(Key::FromOid(truck_i_));
  ASSERT_NE(rec2, nullptr);
  EXPECT_EQ(rec2->postings[0].oid, per_q_);
}

TEST_F(Figure2Fixture, NIXInvertsTheWholePathPerClass) {
  // Figure 5: the primary record for 'Renault' lists, per scope class, all
  // objects reaching the value: Company[i], Vehicle[i], Person[o].
  CheckOk(db_.ConfigureIndexes(
      Path::Create(setup_.schema, setup_.person, {"owns", "man", "name"})
          .value(),
      IndexConfiguration({{Subpath{1, 3}, IndexOrg::kNIX}})));
  EXPECT_EQ(db_.Query(Key::FromString("Renault"), setup_.person).value(),
            (std::vector<Oid>{per_o_}));
  EXPECT_EQ(db_.Query(Key::FromString("Renault"), setup_.vehicle).value(),
            (std::vector<Oid>{veh_i_}));
  EXPECT_EQ(db_.Query(Key::FromString("Renault"), setup_.company).value(),
            (std::vector<Oid>{comp_i_}));
  // Fiat reaches Vehicle[j], Bus[i], Truck[i] and Persons p, q.
  EXPECT_EQ(
      db_.Query(Key::FromString("Fiat"), setup_.vehicle, true).value().size(),
      3u);
  EXPECT_EQ(db_.Query(Key::FromString("Fiat"), setup_.person).value(),
            (std::vector<Oid>{per_p_, per_q_}));
}

TEST_F(Figure2Fixture, Example21ScopeAndLength) {
  // Example 2.1: len(Pe) = 3, class(Pe) = (Per, Veh, Comp),
  // scope(Pe) = (Per, Veh, Bus, Truck, Comp).
  const Path pe =
      Path::Create(setup_.schema, setup_.person, {"owns", "man", "name"})
          .value();
  EXPECT_EQ(pe.length(), 3);
  EXPECT_EQ(pe.classes(),
            (std::vector<ClassId>{setup_.person, setup_.vehicle,
                                  setup_.company}));
  EXPECT_EQ(pe.Scope(setup_.schema),
            (std::vector<ClassId>{setup_.person, setup_.vehicle, setup_.bus,
                                  setup_.truck, setup_.company}));
}

}  // namespace
}  // namespace pathix
