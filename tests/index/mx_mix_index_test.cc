// Dedicated unit tests of the physical MX and MIX organizations: per-class
// vs per-level trees, probe filtering semantics, previous-level key removal
// on deletion, and boundary deletions.

#include <gtest/gtest.h>

#include "datagen/paper_schema.h"
#include "exec/database.h"
#include "index/mix_index.h"
#include "index/mx_index.h"

namespace pathix {
namespace {

class MxMixFixture : public ::testing::Test {
 protected:
  MxMixFixture()
      : setup_(MakeExample51Setup()), db_(setup_.schema, PhysicalParams{}) {
    d1_ = db_.Insert(setup_.division, {{"name", {Value::Str("alpha")}}});
    c1_ = db_.Insert(setup_.company, {{"divs", {Value::Ref(d1_)}}});
    v1_ = db_.Insert(setup_.vehicle, {{"man", {Value::Ref(c1_)}}});
    b1_ = db_.Insert(setup_.bus, {{"man", {Value::Ref(c1_)}}});
    p1_ = db_.Insert(setup_.person,
                     {{"owns", {Value::Ref(v1_), Value::Ref(b1_)}}});
  }

  SubpathIndexContext Ctx(int start, int end) {
    SubpathIndexContext ctx;
    ctx.schema = &setup_.schema;
    ctx.path = &setup_.path;
    ctx.range = Subpath{start, end};
    return ctx;
  }

  PaperSetup setup_;
  SimDatabase db_;
  Oid d1_, c1_, v1_, b1_, p1_;
};

TEST_F(MxMixFixture, MXKeepsOneTreePerScopeClass) {
  MXIndex mx(&db_.pager(), Ctx(1, 4));
  mx.Build(db_.store());
  // Level 2's hierarchy has three classes, each with its own tree.
  EXPECT_NE(mx.tree_for(2, setup_.vehicle), nullptr);
  EXPECT_NE(mx.tree_for(2, setup_.bus), nullptr);
  EXPECT_NE(mx.tree_for(2, setup_.truck), nullptr);
  EXPECT_EQ(mx.tree_for(2, setup_.person), nullptr);
  // Vehicle and Bus postings live in different trees.
  EXPECT_EQ(mx.tree_for(2, setup_.vehicle)->tree().num_records(), 1u);
  EXPECT_EQ(mx.tree_for(2, setup_.bus)->tree().num_records(), 1u);
  EXPECT_EQ(mx.tree_for(2, setup_.truck)->tree().num_records(), 0u);
}

TEST_F(MxMixFixture, MIXKeepsOneTreePerLevel) {
  MIXIndex mix(&db_.pager(), Ctx(1, 4));
  mix.Build(db_.store());
  ASSERT_NE(mix.tree_for(2), nullptr);
  // One record keyed by the company oid, holding both subclasses' oids.
  const PostingRecord* rec =
      mix.tree_for(2)->tree().Peek(Key::FromOid(c1_));
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->postings.size(), 2u);
}

TEST_F(MxMixFixture, ProbeTargetsOnlyRequestedClasses) {
  MXIndex mx(&db_.pager(), Ctx(1, 4));
  mx.Build(db_.store());
  const std::vector<Key> key{Key::FromString("alpha")};
  // w.r.t. Vehicle only: the Bus is filtered out at the target level.
  EXPECT_EQ(mx.Probe(key, 2, {setup_.vehicle}), (std::vector<Oid>{v1_}));
  EXPECT_EQ(mx.Probe(key, 2, {setup_.bus}), (std::vector<Oid>{b1_}));
  const std::vector<Oid> both =
      mx.Probe(key, 2, {setup_.vehicle, setup_.bus, setup_.truck});
  EXPECT_EQ(both.size(), 2u);
}

TEST_F(MxMixFixture, MIXProbeFiltersWithinTheSharedRecord) {
  MIXIndex mix(&db_.pager(), Ctx(1, 4));
  mix.Build(db_.store());
  const std::vector<Key> key{Key::FromString("alpha")};
  EXPECT_EQ(mix.Probe(key, 2, {setup_.bus}), (std::vector<Oid>{b1_}));
  EXPECT_EQ(mix.Probe(key, 1, {setup_.person}), (std::vector<Oid>{p1_}));
}

TEST_F(MxMixFixture, DeleteRemovesOidKeyFromPreviousLevel) {
  MXIndex mx(&db_.pager(), Ctx(1, 4));
  mx.Build(db_.store());
  // Before: the person is reachable through v1.
  EXPECT_EQ(mx.Probe({Key::FromString("alpha")}, 1, {setup_.person}).size(),
            1u);
  const Object vehicle = *db_.store().Peek(v1_);
  mx.OnDelete(vehicle, 2);
  // v1's record in the level-1 (owns) index is gone; the person remains
  // reachable through the bus only.
  EXPECT_EQ(mx.tree_for(1, setup_.person)->tree().Peek(Key::FromOid(v1_)),
            nullptr);
  EXPECT_EQ(mx.Probe({Key::FromString("alpha")}, 1, {setup_.person}).size(),
            1u);
}

TEST_F(MxMixFixture, BoundaryDeleteDropsEndingKeyRecords) {
  MXIndex mx(&db_.pager(), Ctx(1, 2));  // subpath ends at `man`
  mx.Build(db_.store());
  EXPECT_EQ(mx.Probe({Key::FromOid(c1_)}, 1, {setup_.person}).size(), 1u);
  mx.OnBoundaryDelete(c1_);
  EXPECT_TRUE(mx.Probe({Key::FromOid(c1_)}, 1, {setup_.person}).empty());
  CheckOk(mx.Validate());
}

TEST_F(MxMixFixture, InsertMaintainsOnlyTheObjectsOwnTree) {
  MXIndex mx(&db_.pager(), Ctx(1, 4));
  mx.Build(db_.store());
  Object truck;
  truck.oid = 999;
  truck.cls = setup_.truck;
  truck.attrs["man"] = {Value::Ref(c1_)};
  db_.pager().ResetStats();
  mx.OnInsert(truck, 2);
  EXPECT_GT(db_.pager().stats().writes, 0u);
  const PostingRecord* rec =
      mx.tree_for(2, setup_.truck)->tree().Peek(Key::FromOid(c1_));
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->postings[0].oid, 999u);
}

TEST_F(MxMixFixture, ValidateChecksEveryTree) {
  MIXIndex mix(&db_.pager(), Ctx(1, 4));
  mix.Build(db_.store());
  CheckOk(mix.Validate());
  EXPECT_GT(mix.total_pages(), 3u);
}

TEST_F(MxMixFixture, MultiValuedAttributesAddOnePostingPerValue) {
  // A person owning the same bus twice keeps a numchild-2 posting.
  const Oid p2 = db_.Insert(setup_.person,
                            {{"owns", {Value::Ref(b1_), Value::Ref(b1_)}}});
  MXIndex mx(&db_.pager(), Ctx(1, 1));
  mx.Build(db_.store());
  const PostingRecord* rec =
      mx.tree_for(1, setup_.person)->tree().Peek(Key::FromOid(b1_));
  ASSERT_NE(rec, nullptr);
  bool found = false;
  for (const Posting& p : rec->postings) {
    if (p.oid == p2) {
      EXPECT_EQ(p.numchild, 2);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace pathix
