// PhysicalPartRegistry: structurally identical subpaths of different paths
// are one physical structure — built once, maintained once, refcounted.

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "datagen/paper_schema.h"
#include "exec/database.h"

namespace pathix {
namespace {

constexpr int kDistinct = 40;

/// A populated Example 5.1 database with two overlapping registered paths:
/// "people" is the paper's Pexa (Person.owns.man.divs.name) and "fleet" is
/// its suffix Vehicle.man.divs.name — levels [2,4] of people are levels
/// [1,3] of fleet, the same classes navigated by the same attributes.
struct TwoPathInstance {
  TwoPathInstance()
      : setup(MakeExample51Setup()), db(setup.schema, PhysicalParams{}) {
    fleet_path =
        Path::Create(setup.schema, setup.vehicle, {"man", "divs", "name"})
            .value();
    CheckOk(db.RegisterPath("people", setup.path));
    CheckOk(db.RegisterPath("fleet", fleet_path));
    PathDataGenerator gen(2718);
    gen.Populate(&db, {&setup.path, &fleet_path},
                 {
                     {setup.division, 40, kDistinct, 1.0},
                     {setup.company, 40, 0, 3.0},
                     {setup.vehicle, 300, 0, 2.0},
                     {setup.bus, 150, 0, 2.0},
                     {setup.truck, 150, 0, 2.0},
                     {setup.person, 4000, 0, 1.0},
                 });
  }

  PaperSetup setup;
  Path fleet_path;
  SimDatabase db;
};

TEST(PartRegistryTest, SharedSubpathIsOnePhysicalStructure) {
  TwoPathInstance inst;
  // people: [1,1] MX + [2,4] NIX; fleet: [1,3] NIX. The NIX parts are
  // structurally identical (Vehicle.man.divs.name under NIX).
  CheckOk(inst.db.ConfigureIndexes(
      "people", IndexConfiguration({{Subpath{1, 1}, IndexOrg::kMX},
                                    {Subpath{2, 4}, IndexOrg::kNIX}})));
  CheckOk(inst.db.ConfigureIndexes(
      "fleet", IndexConfiguration({{Subpath{1, 3}, IndexOrg::kNIX}})));

  // Exactly one physical structure for the shared subpath: the two
  // configurations reference the same index object.
  EXPECT_EQ(inst.db.physical("people").indexes()[1],
            inst.db.physical("fleet").indexes()[0]);
  // Two distinct structures in total: the people-only MX and the shared NIX.
  EXPECT_EQ(inst.db.registry().live_parts(), 2u);
  const StructuralKey shared_key =
      StructuralKey::ForSubpath(inst.fleet_path, 1, 3, IndexOrg::kNIX);
  EXPECT_EQ(inst.db.registry().use_count(shared_key), 2);
  const StructuralKey people_only =
      StructuralKey::ForSubpath(inst.setup.path, 1, 1, IndexOrg::kMX);
  EXPECT_EQ(inst.db.registry().use_count(people_only), 1);

  // Both paths answer queries correctly through the shared structure.
  const Key key = Key::FromString(EndingValue(3));
  const Result<std::vector<Oid>> people =
      inst.db.Query("people", key, inst.setup.person);
  const Result<std::vector<Oid>> people_naive =
      inst.db.QueryNaive("people", key, inst.setup.person);
  CheckOk(people.status());
  EXPECT_EQ(people.value(), people_naive.value());
  const Result<std::vector<Oid>> fleet =
      inst.db.Query("fleet", key, inst.setup.vehicle, true);
  const Result<std::vector<Oid>> fleet_naive =
      inst.db.QueryNaive("fleet", key, inst.setup.vehicle, true);
  CheckOk(fleet.status());
  EXPECT_EQ(fleet.value(), fleet_naive.value());
  CheckOk(inst.db.ValidateIndexesDeep());
}

TEST(PartRegistryTest, SharedPartIsMaintainedOncePerOperation) {
  TwoPathInstance inst;
  CheckOk(inst.db.ConfigureIndexes(
      "people", IndexConfiguration({{Subpath{1, 1}, IndexOrg::kMX},
                                    {Subpath{2, 4}, IndexOrg::kNIX}})));
  CheckOk(inst.db.ConfigureIndexes(
      "fleet", IndexConfiguration({{Subpath{1, 3}, IndexOrg::kNIX}})));

  // Churn classes inside the shared subpath. If the shared NIX were
  // maintained once per *path*, the second OnDelete would corrupt it (or
  // double-charge); the deep validation and both paths' query results stay
  // exact instead.
  std::vector<Oid> vehicles;
  for (int i = 0; i < 40; ++i) {
    vehicles.push_back(inst.db.Insert(inst.setup.vehicle, {}));
  }
  for (Oid oid : vehicles) CheckOk(inst.db.Delete(oid));
  CheckOk(inst.db.ValidateIndexesDeep());
  const Key key = Key::FromString(EndingValue(7));
  EXPECT_EQ(inst.db.Query("people", key, inst.setup.person).value(),
            inst.db.QueryNaive("people", key, inst.setup.person).value());
  EXPECT_EQ(inst.db.Query("fleet", key, inst.setup.company).value(),
            inst.db.QueryNaive("fleet", key, inst.setup.company).value());
}

TEST(PartRegistryTest, PartsSurviveWhileAnyPathUsesThemAndDieAfter) {
  TwoPathInstance inst;
  CheckOk(inst.db.ConfigureIndexes(
      "people", IndexConfiguration({{Subpath{1, 1}, IndexOrg::kMX},
                                    {Subpath{2, 4}, IndexOrg::kNIX}})));
  CheckOk(inst.db.ConfigureIndexes(
      "fleet", IndexConfiguration({{Subpath{1, 3}, IndexOrg::kNIX}})));
  const StructuralKey shared_key =
      StructuralKey::ForSubpath(inst.fleet_path, 1, 3, IndexOrg::kNIX);
  const SubpathIndex* shared = inst.db.physical("fleet").indexes()[0];

  // fleet walks away: the structure lives on under people, untouched.
  CheckOk(inst.db.ReconfigureIndexes(
      "fleet", IndexConfiguration({{Subpath{1, 3}, IndexOrg::kMX}})));
  EXPECT_EQ(inst.db.registry().use_count(shared_key), 1);
  EXPECT_EQ(inst.db.physical("people").indexes()[1], shared);

  // fleet comes back: it adopts the live structure instead of rebuilding.
  CheckOk(inst.db.ReconfigureIndexes(
      "fleet", IndexConfiguration({{Subpath{1, 3}, IndexOrg::kNIX}})));
  EXPECT_EQ(inst.db.physical("fleet").indexes()[0], shared);
  EXPECT_EQ(inst.db.registry().use_count(shared_key), 2);

  // The last user leaving frees it.
  CheckOk(inst.db.ReconfigureIndexes(
      "people", IndexConfiguration({{Subpath{1, 4}, IndexOrg::kNIX}})));
  CheckOk(inst.db.ReconfigureIndexes(
      "fleet", IndexConfiguration({{Subpath{1, 3}, IndexOrg::kMX}})));
  EXPECT_EQ(inst.db.registry().use_count(shared_key), 0);
}

TEST(PartRegistryTest, BatchReconfigureKeepsPartsMovingBetweenPaths) {
  TwoPathInstance inst;
  CheckOk(inst.db.ConfigureIndexes(
      "people", IndexConfiguration({{Subpath{1, 1}, IndexOrg::kMX},
                                    {Subpath{2, 4}, IndexOrg::kNIX}})));
  CheckOk(inst.db.ConfigureIndexes(
      "fleet", IndexConfiguration({{Subpath{1, 3}, IndexOrg::kMX}})));
  const SubpathIndex* shared = inst.db.physical("people").indexes()[1];

  // One batch: people drops the shared NIX, fleet picks it up. The batch
  // creates the incoming configurations before releasing the outgoing
  // ones, so the structure is handed over, not rebuilt.
  CheckOk(inst.db.ReconfigureIndexes(
      {{"people", IndexConfiguration({{Subpath{1, 4}, IndexOrg::kMX}})},
       {"fleet", IndexConfiguration({{Subpath{1, 3}, IndexOrg::kNIX}})}}));
  EXPECT_EQ(inst.db.physical("fleet").indexes()[0], shared);
  CheckOk(inst.db.ValidateIndexesDeep());
}

}  // namespace
}  // namespace pathix
