#include <gtest/gtest.h>

#include <random>

#include "datagen/generator.h"
#include "datagen/paper_schema.h"
#include "exec/database.h"
#include "index/nix_index.h"

namespace pathix {
namespace {

constexpr int kDistinctNames = 15;

/// Builds a populated vehicle database (Figure 1 shape, small scale).
struct TestDb {
  TestDb() : setup(MakeExample51Setup()), db(setup.schema, PhysicalParams{}) {
    PathDataGenerator gen(/*seed=*/1234);
    created = gen.Populate(
        &db, setup.path,
        {
            {setup.division, 40, kDistinctNames, 1.0},
            {setup.company, 30, 0, 2.0},
            {setup.vehicle, 40, 0, 1.5},
            {setup.bus, 20, 0, 1.0},
            {setup.truck, 20, 0, 1.0},
            {setup.person, 120, 0, 1.5},
        });
  }

  PaperSetup setup;
  SimDatabase db;
  std::map<ClassId, std::vector<Oid>> created;
};

IndexConfiguration WholePath(IndexOrg org) {
  return IndexConfiguration({{Subpath{1, 4}, org}});
}

IndexConfiguration PaperOptimal() {
  return IndexConfiguration({{Subpath{1, 2}, IndexOrg::kNIX},
                             {Subpath{3, 4}, IndexOrg::kMX}});
}

std::vector<Oid> Sorted(std::vector<Oid> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class PhysicalConfigTest
    : public ::testing::TestWithParam<IndexConfiguration> {};

TEST_P(PhysicalConfigTest, IndexedMatchesNaiveForEveryValueAndClass) {
  TestDb t;
  ASSERT_TRUE(t.db.ConfigureIndexes(t.setup.path, GetParam()).ok());
  ASSERT_TRUE(t.db.ValidateIndexesDeep().ok())
      << t.db.ValidateIndexesDeep().ToString();

  const std::vector<ClassId> targets = {t.setup.person, t.setup.vehicle,
                                        t.setup.bus,    t.setup.truck,
                                        t.setup.company, t.setup.division};
  for (int i = 0; i < kDistinctNames; ++i) {
    const Key value = Key::FromString(EndingValue(i));
    for (ClassId target : targets) {
      for (bool subclasses : {false, true}) {
        auto indexed = t.db.Query(value, target, subclasses);
        auto naive = t.db.QueryNaive(value, target, subclasses);
        ASSERT_TRUE(indexed.ok());
        ASSERT_TRUE(naive.ok());
        ASSERT_EQ(Sorted(indexed.value()), Sorted(naive.value()))
            << "value=" << value.ToString() << " target=" << target
            << " subclasses=" << subclasses;
      }
    }
  }
}

TEST_P(PhysicalConfigTest, StaysConsistentUnderRandomUpdates) {
  TestDb t;
  ASSERT_TRUE(t.db.ConfigureIndexes(t.setup.path, GetParam()).ok());

  std::mt19937 rng(777);
  std::vector<ClassId> classes = {t.setup.person, t.setup.vehicle,
                                  t.setup.bus,    t.setup.truck,
                                  t.setup.company, t.setup.division};
  // Live oids per class (mirrors the store).
  std::map<ClassId, std::vector<Oid>> live = t.created;

  auto random_live = [&](ClassId cls) -> Oid {
    auto& v = live[cls];
    if (v.empty()) return kInvalidOid;
    return v[rng() % v.size()];
  };

  for (int step = 0; step < 300; ++step) {
    const ClassId cls = classes[rng() % classes.size()];
    if (rng() % 2 == 0) {
      // Insert an object with valid references / values.
      AttrValues attrs;
      if (cls == t.setup.division) {
        attrs["name"] = {Value::Str(EndingValue(rng() % kDistinctNames))};
      } else if (cls == t.setup.company) {
        const Oid d = random_live(t.setup.division);
        if (d == kInvalidOid) continue;
        attrs["divs"] = {Value::Ref(d)};
      } else if (cls == t.setup.person) {
        std::vector<Value> owns;
        for (ClassId vcls : {t.setup.vehicle, t.setup.bus}) {
          const Oid v = random_live(vcls);
          if (v != kInvalidOid) owns.push_back(Value::Ref(v));
        }
        if (owns.empty()) continue;
        attrs["owns"] = owns;
      } else {  // vehicle kinds
        const Oid c = random_live(t.setup.company);
        if (c == kInvalidOid) continue;
        attrs["man"] = {Value::Ref(c)};
      }
      live[cls].push_back(t.db.Insert(cls, std::move(attrs)));
    } else {
      const Oid victim = random_live(cls);
      if (victim == kInvalidOid) continue;
      ASSERT_TRUE(t.db.Delete(victim).ok());
      auto& v = live[cls];
      v.erase(std::remove(v.begin(), v.end(), victim), v.end());
    }

    if (step % 50 == 49) {
      ASSERT_TRUE(t.db.ValidateIndexesDeep().ok())
          << "step " << step << ": "
          << t.db.ValidateIndexesDeep().ToString();
    }
  }

  // Final full equivalence sweep.
  ASSERT_TRUE(t.db.ValidateIndexesDeep().ok())
      << t.db.ValidateIndexesDeep().ToString();
  for (int i = 0; i < kDistinctNames; ++i) {
    const Key value = Key::FromString(EndingValue(i));
    for (ClassId target : classes) {
      auto indexed = t.db.Query(value, target, /*include_subclasses=*/true);
      auto naive = t.db.QueryNaive(value, target, true);
      ASSERT_TRUE(indexed.ok());
      ASSERT_EQ(Sorted(indexed.value()), Sorted(naive.value()))
          << "value=" << value.ToString() << " target=" << target;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, PhysicalConfigTest,
    ::testing::Values(WholePath(IndexOrg::kMX), WholePath(IndexOrg::kMIX),
                      WholePath(IndexOrg::kNIX), PaperOptimal(),
                      IndexConfiguration({{Subpath{1, 1}, IndexOrg::kMX},
                                          {Subpath{2, 3}, IndexOrg::kMIX},
                                          {Subpath{4, 4}, IndexOrg::kNIX}}),
                      IndexConfiguration({{Subpath{1, 2}, IndexOrg::kNone},
                                          {Subpath{3, 4}, IndexOrg::kMIX}})),
    [](const ::testing::TestParamInfo<IndexConfiguration>& param_info) {
      std::string name = param_info.param.ToString();
      std::string out;
      for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) out += c;
        else if (c == ',' || c == ')') out += '_';
      }
      return out;
    });

// ------------------------------------------------------- counting shapes

TEST(PhysicalCountingTest, NIXQueriesAreCheaperThanMXChains) {
  TestDb t_nix;
  ASSERT_TRUE(
      t_nix.db.ConfigureIndexes(t_nix.setup.path, WholePath(IndexOrg::kNIX))
          .ok());
  TestDb t_mx;
  ASSERT_TRUE(
      t_mx.db.ConfigureIndexes(t_mx.setup.path, WholePath(IndexOrg::kMX))
          .ok());

  std::uint64_t nix_reads = 0;
  std::uint64_t mx_reads = 0;
  for (int i = 0; i < kDistinctNames; ++i) {
    const Key value = Key::FromString(EndingValue(i));
    t_nix.db.pager().ResetStats();
    ASSERT_TRUE(t_nix.db.Query(value, t_nix.setup.person).ok());
    nix_reads += t_nix.db.pager().stats().total();
    t_mx.db.pager().ResetStats();
    ASSERT_TRUE(t_mx.db.Query(value, t_mx.setup.person).ok());
    mx_reads += t_mx.db.pager().stats().total();
  }
  // The paper's central premise: one primary probe beats a 4-level chain
  // through 6 class indexes.
  EXPECT_LT(nix_reads, mx_reads);
}

TEST(PhysicalCountingTest, NaiveEvaluationIsFarMoreExpensive) {
  TestDb t;
  ASSERT_TRUE(t.db.ConfigureIndexes(t.setup.path, PaperOptimal()).ok());
  const Key value = Key::FromString(EndingValue(3));

  t.db.pager().ResetStats();
  auto indexed = t.db.Query(value, t.setup.person);
  const std::uint64_t indexed_cost = t.db.pager().stats().total();

  t.db.pager().ResetStats();
  auto naive = t.db.QueryNaive(value, t.setup.person);
  const std::uint64_t naive_cost = t.db.pager().stats().total();

  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(Sorted(indexed.value()), Sorted(naive.value()));
  EXPECT_GT(naive_cost, 2 * indexed_cost);
}

TEST(PhysicalCountingTest, IndexStoragePagesAreReported) {
  TestDb t;
  ASSERT_TRUE(t.db.ConfigureIndexes(t.setup.path, PaperOptimal()).ok());
  EXPECT_GT(t.db.physical().total_pages(), 4u);
}

// --------------------------------------------------------- NIX specifics

TEST(NIXPhysicalTest, NumchildDrivesDeferredRemoval) {
  // Hand-built micro scenario: one Person owning two Buses made by the
  // same Company. Removing one Bus must keep the Person posted under the
  // company's division names (numchild 2 -> 1); removing the second Bus
  // must drop the Person (numchild 0).
  ClassId per, veh, bus, truck, comp, divi;
  Schema schema = MakePaperSchema(&per, &veh, &bus, &truck, &comp, &divi);
  const Path path =
      Path::Create(schema, per, {"owns", "man", "divs", "name"}).value();
  SimDatabase db(schema, PhysicalParams{});

  const Oid d1 = db.Insert(divi, {{"name", {Value::Str("alpha")}}});
  const Oid c1 = db.Insert(comp, {{"divs", {Value::Ref(d1)}}});
  const Oid b1 = db.Insert(bus, {{"man", {Value::Ref(c1)}}});
  const Oid b2 = db.Insert(bus, {{"man", {Value::Ref(c1)}}});
  const Oid p1 =
      db.Insert(per, {{"owns", {Value::Ref(b1), Value::Ref(b2)}}});

  ASSERT_TRUE(db.ConfigureIndexes(path, WholePath(IndexOrg::kNIX)).ok());
  ASSERT_TRUE(db.ValidateIndexesDeep().ok());

  const Key alpha = Key::FromString("alpha");
  EXPECT_EQ(db.Query(alpha, per).value(), (std::vector<Oid>{p1}));

  ASSERT_TRUE(db.Delete(b1).ok());
  ASSERT_TRUE(db.ValidateIndexesDeep().ok())
      << db.ValidateIndexesDeep().ToString();
  EXPECT_EQ(db.Query(alpha, per).value(), (std::vector<Oid>{p1}));

  ASSERT_TRUE(db.Delete(b2).ok());
  ASSERT_TRUE(db.ValidateIndexesDeep().ok())
      << db.ValidateIndexesDeep().ToString();
  EXPECT_TRUE(db.Query(alpha, per).value().empty());
}

TEST(NIXPhysicalTest, BoundaryDeleteDropsKeyRecordAndPointers) {
  ClassId per, veh, bus, truck, comp, divi;
  Schema schema = MakePaperSchema(&per, &veh, &bus, &truck, &comp, &divi);
  const Path path =
      Path::Create(schema, per, {"owns", "man", "divs", "name"}).value();
  SimDatabase db(schema, PhysicalParams{});

  const Oid d1 = db.Insert(divi, {{"name", {Value::Str("alpha")}}});
  const Oid c1 = db.Insert(comp, {{"divs", {Value::Ref(d1)}}});
  const Oid v1 = db.Insert(veh, {{"man", {Value::Ref(c1)}}});
  const Oid p1 = db.Insert(per, {{"owns", {Value::Ref(v1)}}});
  (void)p1;

  // Split configuration: the NIX on [1,2] is keyed by Company oids.
  ASSERT_TRUE(db.ConfigureIndexes(path, PaperOptimal()).ok());
  ASSERT_TRUE(db.ValidateIndexesDeep().ok());

  // Deleting the company triggers OnBoundaryDelete on the NIX.
  ASSERT_TRUE(db.Delete(c1).ok());
  ASSERT_TRUE(db.ValidateIndexesDeep().ok())
      << db.ValidateIndexesDeep().ToString();
  EXPECT_TRUE(db.Query(Key::FromString("alpha"), per).value().empty());
  EXPECT_EQ(db.Query(Key::FromString("alpha"), divi).value(),
            (std::vector<Oid>{d1}));
}

TEST(NIXPhysicalTest, InsertWiresParentsThroughAuxIndex) {
  ClassId per, veh, bus, truck, comp, divi;
  Schema schema = MakePaperSchema(&per, &veh, &bus, &truck, &comp, &divi);
  const Path path =
      Path::Create(schema, per, {"owns", "man", "divs", "name"}).value();
  SimDatabase db(schema, PhysicalParams{});

  const Oid d1 = db.Insert(divi, {{"name", {Value::Str("alpha")}}});
  const Oid c1 = db.Insert(comp, {{"divs", {Value::Ref(d1)}}});
  ASSERT_TRUE(db.ConfigureIndexes(path, WholePath(IndexOrg::kNIX)).ok());

  // Insert a vehicle, then a person, after the index exists.
  const Oid v1 = db.Insert(veh, {{"man", {Value::Ref(c1)}}});
  const Oid p1 = db.Insert(per, {{"owns", {Value::Ref(v1)}}});
  ASSERT_TRUE(db.ValidateIndexesDeep().ok())
      << db.ValidateIndexesDeep().ToString();
  EXPECT_EQ(db.Query(Key::FromString("alpha"), per).value(),
            (std::vector<Oid>{p1}));
  EXPECT_EQ(db.Query(Key::FromString("alpha"), veh).value(),
            (std::vector<Oid>{v1}));
}

}  // namespace
}  // namespace pathix
