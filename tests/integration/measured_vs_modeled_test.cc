// Tentpole acceptance: the analytic cost matrix stays within a stated
// envelope of pager-measured reality over *whole replayed traces* — per
// path and per phase, on both shipped trace specs. This extends
// model_vs_sim_test.cc (single queries, fresh statistics) to the quantity
// the selection pipeline actually consumes: trace-long expectations under
// drifting mixes, with shared-part maintenance deduped exactly as the joint
// advisor prices it.
//
// The envelope numbers are deliberately asymmetric and documented in the
// README ("Measured vs modeled costs"):
//  - per-path query cells: measured within [1/3, 3] of the matrix — the
//    same factor the single-query validation grants each organization
//    model (observed on the shipped specs: 0.59..1.06);
//  - whole-phase totals (queries + maintenance + store baseline): within
//    [1/2, 2] — maintenance models are the loosest component (observed:
//    1.05..1.40, the update-heavy ingest phase being the worst).

#include <gtest/gtest.h>

#include "online/measured_validation.h"

namespace pathix {
namespace {

constexpr double kCellFactor = 3.0;
constexpr double kPhaseFactor = 2.0;

class MeasuredVsModeledTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MeasuredVsModeledTest, TraceStaysInsideTheEnvelope) {
  Result<TraceSpec> parsed = ParseTraceSpecFile(
      std::string(PATHIX_SOURCE_DIR) + "/examples/specs/" + GetParam());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const TraceSpec& spec = parsed.value();
  ASSERT_TRUE(spec.measure) << "shipped trace specs opt into `measure on`";

  Result<MeasuredVsModeledReport> result = RunMeasuredVsModeled(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const MeasuredVsModeledReport& report = result.value();

  ASSERT_EQ(report.configs.size(), spec.paths.size());
  ASSERT_EQ(report.phases.size(), spec.phases.size());
  ASSERT_FALSE(report.cells.empty());

  for (const MeasuredVsModeledCell& cell : report.cells) {
    ASSERT_GT(cell.modeled_pages_per_op, 0)
        << cell.phase << "/" << cell.path;
    EXPECT_LE(cell.measured_pages_per_op,
              cell.modeled_pages_per_op * kCellFactor)
        << cell.phase << "/" << cell.path << " over " << cell.query_ops
        << " query ops";
    EXPECT_LE(cell.modeled_pages_per_op,
              cell.measured_pages_per_op * kCellFactor)
        << cell.phase << "/" << cell.path << " over " << cell.query_ops
        << " query ops";
  }
  for (const MeasuredVsModeledPhase& phase : report.phases) {
    ASSERT_GT(phase.modeled_pages_per_op, 0) << phase.phase;
    EXPECT_LE(phase.measured_pages_per_op,
              phase.modeled_pages_per_op * kPhaseFactor)
        << phase.phase;
    EXPECT_LE(phase.modeled_pages_per_op,
              phase.measured_pages_per_op * kPhaseFactor)
        << phase.phase;
  }
}

// Determinism of the harness itself: a second run reproduces every number
// bit for bit (the envelope would be meaningless over a noisy measurement).
TEST(MeasuredVsModeledTest, HarnessIsDeterministic) {
  Result<TraceSpec> parsed = ParseTraceSpecFile(
      std::string(PATHIX_SOURCE_DIR) +
      "/examples/specs/vehicle_drift_trace.pix");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  const MeasuredVsModeledReport a =
      RunMeasuredVsModeled(parsed.value()).value();
  const MeasuredVsModeledReport b =
      RunMeasuredVsModeled(parsed.value()).value();
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].measured_pages_per_op,
              b.cells[i].measured_pages_per_op);
    EXPECT_EQ(a.cells[i].modeled_pages_per_op,
              b.cells[i].modeled_pages_per_op);
    EXPECT_EQ(a.cells[i].query_ops, b.cells[i].query_ops);
  }
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    EXPECT_EQ(a.phases[i].measured_pages_per_op,
              b.phases[i].measured_pages_per_op);
    EXPECT_EQ(a.phases[i].modeled_pages_per_op,
              b.phases[i].modeled_pages_per_op);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShippedSpecs, MeasuredVsModeledTest,
    ::testing::Values("vehicle_drift_trace.pix", "vehicle_joint_trace.pix"),
    [](const ::testing::TestParamInfo<const char*>& param_info) {
      std::string name = param_info.param;
      name = name.substr(0, name.find('.'));
      return name;
    });

}  // namespace
}  // namespace pathix
