// Integration test: the analytic cost model's predictions agree with the
// page-level simulator within tolerance bands, and — decisive for the
// selection algorithm — rank the organizations identically (the light-weight
// in-suite version of bench_validation).

#include <gtest/gtest.h>

#include "costmodel/org_model.h"
#include "datagen/generator.h"
#include "datagen/paper_schema.h"
#include "exec/analyze.h"
#include "exec/database.h"

namespace pathix {
namespace {

constexpr int kDistinct = 40;

struct Instance {
  Instance() : setup(MakeExample51Setup()), db(setup.schema, PhysicalParams{}) {
    PathDataGenerator gen(31415);
    gen.Populate(&db, setup.path,
                 {
                     {setup.division, 40, kDistinct, 1.0},
                     {setup.company, 40, 0, 3.0},
                     {setup.vehicle, 300, 0, 2.0},
                     {setup.bus, 150, 0, 2.0},
                     {setup.truck, 150, 0, 2.0},
                     {setup.person, 5000, 0, 1.0},
                 });
    catalog = CollectStatistics(db.store(), setup.schema, setup.path,
                                PhysicalParams{});
  }

  double MeasuredQueryCost(ClassId target) {
    double total = 0;
    const int n = 20;
    for (int i = 0; i < n; ++i) {
      db.pager().ResetStats();
      CheckOk(db.Query(Key::FromString(EndingValue(i % kDistinct)), target)
                  .status());
      total += static_cast<double>(db.pager().stats().total());
    }
    return total / n;
  }

  PaperSetup setup;
  SimDatabase db;
  Catalog catalog;
};

class ModelVsSimTest : public ::testing::TestWithParam<IndexOrg> {};

TEST_P(ModelVsSimTest, QueryPredictionsWithinTolerance) {
  const IndexOrg org = GetParam();
  Instance inst;
  CheckOk(inst.db.ConfigureIndexes(
      inst.setup.path, IndexConfiguration({{Subpath{1, 4}, org}})));
  LoadDistribution load;
  const PathContext ctx = PathContext::Build(inst.setup.schema,
                                             inst.setup.path, inst.catalog,
                                             load)
                              .value();
  const std::unique_ptr<OrgCostModel> model =
      MakeOrgCostModel(org, ctx, 1, 4);

  const struct {
    int level;
    ClassId cls;
  } probes[] = {{1, inst.setup.person},
                {2, inst.setup.vehicle},
                {4, inst.setup.division}};
  for (const auto& p : probes) {
    const double predicted = model->QueryCost(p.level, 0);
    const double measured = inst.MeasuredQueryCost(p.cls);
    // Within a factor of 3 in both directions.
    EXPECT_LE(predicted, measured * 3 + 3)
        << ToString(org) << " level " << p.level;
    EXPECT_LE(measured, predicted * 3 + 3)
        << ToString(org) << " level " << p.level;
  }
}

INSTANTIATE_TEST_SUITE_P(Orgs, ModelVsSimTest,
                         ::testing::Values(IndexOrg::kMX, IndexOrg::kMIX,
                                           IndexOrg::kNIX),
                         [](const ::testing::TestParamInfo<IndexOrg>& param_info) {
                           return ToString(param_info.param);
                         });

TEST(ModelVsSimRankingTest, DeepQueryRankingAgrees) {
  double measured[3];
  double predicted[3];
  const IndexOrg orgs[] = {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX};
  for (int i = 0; i < 3; ++i) {
    Instance inst;
    CheckOk(inst.db.ConfigureIndexes(
        inst.setup.path, IndexConfiguration({{Subpath{1, 4}, orgs[i]}})));
    LoadDistribution load;
    const PathContext ctx = PathContext::Build(inst.setup.schema,
                                               inst.setup.path, inst.catalog,
                                               load)
                                .value();
    predicted[i] = MakeOrgCostModel(orgs[i], ctx, 1, 4)->QueryCost(1, 0);
    measured[i] = inst.MeasuredQueryCost(inst.setup.person);
  }
  // NIX must be the cheapest deep-query organization on both sides — the
  // paper's central premise.
  EXPECT_LT(predicted[2], predicted[0]);
  EXPECT_LT(predicted[2], predicted[1]);
  EXPECT_LT(measured[2], measured[0]);
  EXPECT_LT(measured[2], measured[1]);
}

TEST(ModelVsSimRankingTest, NIXMaintenanceCostlierThanMXInBoth) {
  double measured[2];
  double predicted[2];
  const IndexOrg orgs[] = {IndexOrg::kMX, IndexOrg::kNIX};
  for (int i = 0; i < 2; ++i) {
    Instance inst;
    CheckOk(inst.db.ConfigureIndexes(
        inst.setup.path, IndexConfiguration({{Subpath{1, 4}, orgs[i]}})));
    LoadDistribution load;
    const PathContext ctx = PathContext::Build(inst.setup.schema,
                                               inst.setup.path, inst.catalog,
                                               load)
                                .value();
    predicted[i] = MakeOrgCostModel(orgs[i], ctx, 1, 4)->DeleteCost(2, 0);
    // Measure: delete 20 vehicles.
    std::vector<Oid> victims = inst.db.store().PeekAll(inst.setup.vehicle);
    double total = 0;
    for (int k = 0; k < 20; ++k) {
      inst.db.pager().ResetStats();
      CheckOk(inst.db.Delete(victims[static_cast<std::size_t>(k) * 7]));
      total += static_cast<double>(inst.db.pager().stats().total());
    }
    measured[i] = total / 20;
  }
  EXPECT_GT(predicted[1], predicted[0]);
  EXPECT_GT(measured[1], measured[0]);
}

}  // namespace
}  // namespace pathix
