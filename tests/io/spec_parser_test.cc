#include "io/spec_parser.h"

#include <gtest/gtest.h>

#include "advisor/workload_advisor.h"

namespace pathix {
namespace {

constexpr const char* kGoodSpec = R"(
# comment line
page_size 2048
class A 1000 100 1
class B 500 50 2
class B2 : B 250 25 1
class C 100 100 1
ref A to_b B multi
ref B to_c C
attr C name string
path A to_b to_c name
load A 0.5 0.1 0.1
load B 0.2 0.1 0.1   # trailing comment
load C 0.1 0.1 0.1
)";

TEST(SpecParserTest, ParsesACompleteSpec) {
  Result<AdvisorSpec> spec = ParseAdvisorSpec(kGoodSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  AdvisorSpec& s = spec.value();
  EXPECT_EQ(s.schema.num_classes(), 4);
  EXPECT_EQ(s.path.length(), 3);
  EXPECT_EQ(s.path.ToString(s.schema), "A.to_b.to_c.name");
  EXPECT_DOUBLE_EQ(s.catalog.params().page_size, 2048);
  EXPECT_DOUBLE_EQ(s.catalog.GetClassStats(s.schema.FindClass("B")).nin, 2);
  EXPECT_DOUBLE_EQ(s.load.Get(s.schema.FindClass("A")).query, 0.5);
  // Subclass wiring.
  EXPECT_EQ(s.schema.GetClass(s.schema.FindClass("B2")).superclass(),
            s.schema.FindClass("B"));
}

TEST(SpecParserTest, ParsedSpecDrivesTheAdvisor) {
  AdvisorSpec s = ParseAdvisorSpec(kGoodSpec).value();
  Result<Recommendation> rec =
      AdviseIndexConfiguration(s.schema, s.path, s.catalog, s.load, s.options);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(rec.value().result.config.Validate(3).ok());
}

TEST(SpecParserTest, OrgsAndMatchingKeysDirectives) {
  std::string text = kGoodSpec;
  text += "\norgs MX NIX PX\nmatching_keys 12\n";
  AdvisorSpec s = ParseAdvisorSpec(text).value();
  ASSERT_EQ(s.options.orgs.size(), 3u);
  EXPECT_EQ(s.options.orgs[2], IndexOrg::kPX);
  EXPECT_DOUBLE_EQ(s.options.query_profile.matching_keys, 12);
}

TEST(SpecParserTest, ErrorsCarryLineNumbers) {
  const char* bad = "class A 10 10 1\nbogus directive\n";
  Result<AdvisorSpec> spec = ParseAdvisorSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("line 2"), std::string::npos);
}

TEST(SpecParserTest, UnknownClassInRefRejected) {
  const char* bad = "class A 10 10 1\nref A to_b Ghost\npath A to_b\n";
  EXPECT_FALSE(ParseAdvisorSpec(bad).ok());
}

TEST(SpecParserTest, UnknownSuperclassRejected) {
  EXPECT_FALSE(ParseAdvisorSpec("class B : Ghost 10 10 1\n").ok());
}

TEST(SpecParserTest, MissingPathRejected) {
  EXPECT_FALSE(ParseAdvisorSpec("class A 10 10 1\n").ok());
}

TEST(SpecParserTest, DuplicatePathRejected) {
  const char* bad =
      "class A 10 10 1\nclass C 5 5 1\nref A to_c C\nattr C n string\n"
      "path A to_c n\npath A to_c n\n";
  EXPECT_FALSE(ParseAdvisorSpec(bad).ok());
}

TEST(SpecParserTest, NonNumericStatisticsRejected) {
  EXPECT_FALSE(ParseAdvisorSpec("class A ten 10 1\npath A x\n").ok());
}

TEST(SpecParserTest, NegativeLoadRejected) {
  const char* bad =
      "class A 10 10 1\nattr A n string\npath A n\nload A -1 0 0\n";
  EXPECT_FALSE(ParseAdvisorSpec(bad).ok());
}

TEST(SpecParserTest, NanAndInfValuesRejected) {
  // std::stod parses "nan" and "inf"; the range checks must not let them
  // through into the cost model (NaN poisons every comparison downstream).
  EXPECT_FALSE(
      ParseAdvisorSpec(
          "class A 10 10 1\nattr A n string\npath A n\nload A nan 0 0\n")
          .ok());
  EXPECT_FALSE(ParseAdvisorSpec("page_size nan\nclass A 10 10 1\n"
                                "attr A n string\npath A n\n")
                   .ok());
  EXPECT_FALSE(ParseWorkloadSpec("class A 10 10 1\nattr A n string\n"
                                 "path A n\nload A 0.1 0 0\nbudget nan\n")
                   .ok());
  EXPECT_FALSE(ParseWorkloadSpec("class A 10 10 1\nattr A n string\n"
                                 "path A n\nload A 0.1 0 0\nbudget inf\n")
                   .ok());
}

TEST(SpecParserTest, BadOrgTokenRejected) {
  const char* bad =
      "class A 10 10 1\nattr A n string\npath A n\norgs HASH\n";
  EXPECT_FALSE(ParseAdvisorSpec(bad).ok());
}

TEST(SpecParserTest, InvalidPathAttributeRejected) {
  const char* bad = "class A 10 10 1\npath A ghost\n";
  Result<AdvisorSpec> spec = ParseAdvisorSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("ghost"), std::string::npos);
}

TEST(SpecParserTest, MissingFileIsNotFound) {
  Result<AdvisorSpec> spec = ParseAdvisorSpecFile("/nonexistent/x.pix");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kNotFound);
}

TEST(SpecParserTest, VehicleSpecFileMatchesExample51) {
  // The shipped spec reproduces the canned Example 5.1 recommendation.
  Result<AdvisorSpec> spec =
      ParseAdvisorSpecFile(std::string(PATHIX_SOURCE_DIR) +
                           "/examples/specs/vehicle.pix");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  AdvisorSpec& s = spec.value();
  const Recommendation rec =
      AdviseIndexConfiguration(s.schema, s.path, s.catalog, s.load, s.options)
          .value();
  EXPECT_EQ(rec.result.config.ToString(s.schema, s.path),
            "{(Person.owns.man, NIX), (Company.divs.name, MX)}");
}

TEST(SpecParserTest, DuplicateLoadRejectedWithLineNumber) {
  const char* bad =
      "class A 10 10 1\nattr A n string\npath A n\n"
      "load A 0.5 0.1 0.1\nload A 0.2 0.1 0.1\n";
  Result<AdvisorSpec> spec = ParseAdvisorSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("line 5"), std::string::npos);
  EXPECT_NE(spec.status().message().find("duplicate load"),
            std::string::npos);
}

TEST(SpecParserTest, DuplicateOrgsRejectedWithLineNumber) {
  const char* bad =
      "class A 10 10 1\nattr A n string\npath A n\n"
      "orgs MX NIX\norgs MX\n";
  Result<AdvisorSpec> spec = ParseAdvisorSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("line 5"), std::string::npos);
  EXPECT_NE(spec.status().message().find("duplicate orgs"),
            std::string::npos);
}

TEST(SpecParserTest, BudgetRejectedInSinglePathMode) {
  const char* bad =
      "class A 10 10 1\nattr A n string\npath A n\nbudget 1000\n";
  Result<AdvisorSpec> spec = ParseAdvisorSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("line 4"), std::string::npos);
}

constexpr const char* kWorkloadSpec = R"(
class A 1000 100 1
class B 500 50 2
class C 100 100 1
ref A to_b B multi
ref B to_c C
attr C name string
load C 0.1 0.1 0.1        # default: applies to every path
path A to_b to_c name
load A 0.5 0.1 0.1
load B 0.2 0.1 0.1
path B to_c name
load B 0.3 0.2 0.1
load C 0.4 0.1 0.1        # overrides the default for this path
budget 123456
)";

TEST(SpecParserTest, ParsesAWorkloadSpec) {
  Result<WorkloadSpec> spec = ParseWorkloadSpec(kWorkloadSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  WorkloadSpec& s = spec.value();
  ASSERT_EQ(s.paths.size(), 2u);
  EXPECT_EQ(s.paths[0].path.ToString(s.schema), "A.to_b.to_c.name");
  EXPECT_EQ(s.paths[1].path.ToString(s.schema), "B.to_c.name");
  EXPECT_TRUE(s.has_budget);
  EXPECT_DOUBLE_EQ(s.joint_options.storage_budget_bytes, 123456);

  const ClassId a = s.schema.FindClass("A");
  const ClassId b = s.schema.FindClass("B");
  const ClassId c = s.schema.FindClass("C");
  // Per-path loads bind to the preceding path directive.
  EXPECT_DOUBLE_EQ(s.paths[0].load.Get(a).query, 0.5);
  EXPECT_DOUBLE_EQ(s.paths[1].load.Get(a).query, 0);
  EXPECT_DOUBLE_EQ(s.paths[1].load.Get(b).query, 0.3);
  // The default load before the first path reaches both paths, unless the
  // path overrides it.
  EXPECT_DOUBLE_EQ(s.paths[0].load.Get(c).query, 0.1);
  EXPECT_DOUBLE_EQ(s.paths[1].load.Get(c).query, 0.4);
}

TEST(SpecParserTest, WorkloadAllowsLoadRedeclaredPerPath) {
  // The same class may carry a load in each path section (and in the
  // default section) — only a repeat within one section is an error.
  Result<WorkloadSpec> spec = ParseWorkloadSpec(kWorkloadSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
}

TEST(SpecParserTest, WorkloadDuplicateLoadInOneSectionRejected) {
  std::string bad = kWorkloadSpec;
  bad += "load B 0.9 0.9 0.9\nload B 0.1 0.1 0.1\n";
  Result<WorkloadSpec> spec = ParseWorkloadSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("duplicate load"),
            std::string::npos);
}

TEST(SpecParserTest, WorkloadDuplicateBudgetRejected) {
  std::string bad = kWorkloadSpec;
  bad += "budget 99\n";
  Result<WorkloadSpec> spec = ParseWorkloadSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("duplicate budget"),
            std::string::npos);
}

TEST(SpecParserTest, WorkloadWithoutPathsRejected) {
  EXPECT_FALSE(ParseWorkloadSpec("class A 10 10 1\n").ok());
}

TEST(SpecParserTest, WorkloadSpecFileDrivesTheWorkloadAdvisor) {
  Result<WorkloadSpec> spec =
      ParseWorkloadSpecFile(std::string(PATHIX_SOURCE_DIR) +
                            "/examples/specs/vehicle_workload.pix");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  WorkloadSpec& s = spec.value();
  ASSERT_EQ(s.paths.size(), 3u);
  ASSERT_TRUE(s.has_budget);
  Result<WorkloadRecommendation> rec = AdviseWorkload(
      s.schema, s.catalog, s.paths, s.options, s.joint_options);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  // The shipped budget binds and stays respected.
  EXPECT_LE(rec.value().joint.total_storage_bytes,
            s.joint_options.storage_budget_bytes + 1e-6);
  EXPECT_LE(rec.value().total_cost_greedy,
            rec.value().total_cost_independent + 1e-9);
}

TEST(SpecParserTest, DocumentStoreSpecFileParsesAndAdvises) {
  Result<AdvisorSpec> spec =
      ParseAdvisorSpecFile(std::string(PATHIX_SOURCE_DIR) +
                           "/examples/specs/document_store.pix");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  AdvisorSpec& s = spec.value();
  EXPECT_EQ(s.path.ToString(s.schema), "Submission.review.forum.name");
  Result<Recommendation> rec =
      AdviseIndexConfiguration(s.schema, s.path, s.catalog, s.load, s.options);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(rec.value().result.config.Validate(s.path.length()).ok());
}

}  // namespace
}  // namespace pathix
