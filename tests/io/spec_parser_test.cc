#include "io/spec_parser.h"

#include <gtest/gtest.h>

#include "advisor/workload_advisor.h"

namespace pathix {
namespace {

constexpr const char* kGoodSpec = R"(
# comment line
page_size 2048
class A 1000 100 1
class B 500 50 2
class B2 : B 250 25 1
class C 100 100 1
ref A to_b B multi
ref B to_c C
attr C name string
path A to_b to_c name
load A 0.5 0.1 0.1
load B 0.2 0.1 0.1   # trailing comment
load C 0.1 0.1 0.1
)";

TEST(SpecParserTest, ParsesACompleteSpec) {
  Result<AdvisorSpec> spec = ParseAdvisorSpec(kGoodSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  AdvisorSpec& s = spec.value();
  EXPECT_EQ(s.schema.num_classes(), 4);
  EXPECT_EQ(s.path.length(), 3);
  EXPECT_EQ(s.path.ToString(s.schema), "A.to_b.to_c.name");
  EXPECT_DOUBLE_EQ(s.catalog.params().page_size, 2048);
  EXPECT_DOUBLE_EQ(s.catalog.GetClassStats(s.schema.FindClass("B")).nin, 2);
  EXPECT_DOUBLE_EQ(s.load.Get(s.schema.FindClass("A")).query, 0.5);
  // Subclass wiring.
  EXPECT_EQ(s.schema.GetClass(s.schema.FindClass("B2")).superclass(),
            s.schema.FindClass("B"));
}

TEST(SpecParserTest, ParsedSpecDrivesTheAdvisor) {
  AdvisorSpec s = ParseAdvisorSpec(kGoodSpec).value();
  Result<Recommendation> rec =
      AdviseIndexConfiguration(s.schema, s.path, s.catalog, s.load, s.options);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(rec.value().result.config.Validate(3).ok());
}

TEST(SpecParserTest, OrgsAndMatchingKeysDirectives) {
  std::string text = kGoodSpec;
  text += "\norgs MX NIX PX\nmatching_keys 12\n";
  AdvisorSpec s = ParseAdvisorSpec(text).value();
  ASSERT_EQ(s.options.orgs.size(), 3u);
  EXPECT_EQ(s.options.orgs[2], IndexOrg::kPX);
  EXPECT_DOUBLE_EQ(s.options.query_profile.matching_keys, 12);
}

TEST(SpecParserTest, ErrorsCarryLineNumbers) {
  const char* bad = "class A 10 10 1\nbogus directive\n";
  Result<AdvisorSpec> spec = ParseAdvisorSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("line 2"), std::string::npos);
}

TEST(SpecParserTest, UnknownClassInRefRejected) {
  const char* bad = "class A 10 10 1\nref A to_b Ghost\npath A to_b\n";
  EXPECT_FALSE(ParseAdvisorSpec(bad).ok());
}

TEST(SpecParserTest, UnknownSuperclassRejected) {
  EXPECT_FALSE(ParseAdvisorSpec("class B : Ghost 10 10 1\n").ok());
}

TEST(SpecParserTest, MissingPathRejected) {
  EXPECT_FALSE(ParseAdvisorSpec("class A 10 10 1\n").ok());
}

TEST(SpecParserTest, DuplicatePathRejected) {
  const char* bad =
      "class A 10 10 1\nclass C 5 5 1\nref A to_c C\nattr C n string\n"
      "path A to_c n\npath A to_c n\n";
  EXPECT_FALSE(ParseAdvisorSpec(bad).ok());
}

TEST(SpecParserTest, NonNumericStatisticsRejected) {
  EXPECT_FALSE(ParseAdvisorSpec("class A ten 10 1\npath A x\n").ok());
}

TEST(SpecParserTest, NegativeLoadRejected) {
  const char* bad =
      "class A 10 10 1\nattr A n string\npath A n\nload A -1 0 0\n";
  EXPECT_FALSE(ParseAdvisorSpec(bad).ok());
}

TEST(SpecParserTest, NanAndInfValuesRejected) {
  // std::stod parses "nan" and "inf"; the range checks must not let them
  // through into the cost model (NaN poisons every comparison downstream).
  EXPECT_FALSE(
      ParseAdvisorSpec(
          "class A 10 10 1\nattr A n string\npath A n\nload A nan 0 0\n")
          .ok());
  EXPECT_FALSE(ParseAdvisorSpec("page_size nan\nclass A 10 10 1\n"
                                "attr A n string\npath A n\n")
                   .ok());
  EXPECT_FALSE(ParseWorkloadSpec("class A 10 10 1\nattr A n string\n"
                                 "path A n\nload A 0.1 0 0\nbudget nan\n")
                   .ok());
  EXPECT_FALSE(ParseWorkloadSpec("class A 10 10 1\nattr A n string\n"
                                 "path A n\nload A 0.1 0 0\nbudget inf\n")
                   .ok());
}

TEST(SpecParserTest, BadOrgTokenRejected) {
  const char* bad =
      "class A 10 10 1\nattr A n string\npath A n\norgs HASH\n";
  EXPECT_FALSE(ParseAdvisorSpec(bad).ok());
}

TEST(SpecParserTest, InvalidPathAttributeRejected) {
  const char* bad = "class A 10 10 1\npath A ghost\n";
  Result<AdvisorSpec> spec = ParseAdvisorSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("ghost"), std::string::npos);
}

TEST(SpecParserTest, MissingFileIsNotFound) {
  Result<AdvisorSpec> spec = ParseAdvisorSpecFile("/nonexistent/x.pix");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kNotFound);
}

TEST(SpecParserTest, VehicleSpecFileMatchesExample51) {
  // The shipped spec reproduces the canned Example 5.1 recommendation.
  Result<AdvisorSpec> spec =
      ParseAdvisorSpecFile(std::string(PATHIX_SOURCE_DIR) +
                           "/examples/specs/vehicle.pix");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  AdvisorSpec& s = spec.value();
  const Recommendation rec =
      AdviseIndexConfiguration(s.schema, s.path, s.catalog, s.load, s.options)
          .value();
  EXPECT_EQ(rec.result.config.ToString(s.schema, s.path),
            "{(Person.owns.man, NIX), (Company.divs.name, MX)}");
}

TEST(SpecParserTest, DuplicateLoadRejectedWithLineNumber) {
  const char* bad =
      "class A 10 10 1\nattr A n string\npath A n\n"
      "load A 0.5 0.1 0.1\nload A 0.2 0.1 0.1\n";
  Result<AdvisorSpec> spec = ParseAdvisorSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("line 5"), std::string::npos);
  EXPECT_NE(spec.status().message().find("duplicate load"),
            std::string::npos);
}

TEST(SpecParserTest, DuplicateOrgsRejectedWithLineNumber) {
  const char* bad =
      "class A 10 10 1\nattr A n string\npath A n\n"
      "orgs MX NIX\norgs MX\n";
  Result<AdvisorSpec> spec = ParseAdvisorSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("line 5"), std::string::npos);
  EXPECT_NE(spec.status().message().find("duplicate orgs"),
            std::string::npos);
}

TEST(SpecParserTest, BudgetRejectedInSinglePathMode) {
  const char* bad =
      "class A 10 10 1\nattr A n string\npath A n\nbudget 1000\n";
  Result<AdvisorSpec> spec = ParseAdvisorSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("line 4"), std::string::npos);
}

constexpr const char* kWorkloadSpec = R"(
class A 1000 100 1
class B 500 50 2
class C 100 100 1
ref A to_b B multi
ref B to_c C
attr C name string
load C 0.1 0.1 0.1        # default: applies to every path
path A to_b to_c name
load A 0.5 0.1 0.1
load B 0.2 0.1 0.1
path B to_c name
load B 0.3 0.2 0.1
load C 0.4 0.1 0.1        # overrides the default for this path
budget 123456
)";

TEST(SpecParserTest, ParsesAWorkloadSpec) {
  Result<WorkloadSpec> spec = ParseWorkloadSpec(kWorkloadSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  WorkloadSpec& s = spec.value();
  ASSERT_EQ(s.paths.size(), 2u);
  EXPECT_EQ(s.paths[0].path.ToString(s.schema), "A.to_b.to_c.name");
  EXPECT_EQ(s.paths[1].path.ToString(s.schema), "B.to_c.name");
  EXPECT_TRUE(s.has_budget);
  EXPECT_DOUBLE_EQ(s.joint_options.storage_budget_bytes, 123456);

  const ClassId a = s.schema.FindClass("A");
  const ClassId b = s.schema.FindClass("B");
  const ClassId c = s.schema.FindClass("C");
  // Per-path loads bind to the preceding path directive.
  EXPECT_DOUBLE_EQ(s.paths[0].load.Get(a).query, 0.5);
  EXPECT_DOUBLE_EQ(s.paths[1].load.Get(a).query, 0);
  EXPECT_DOUBLE_EQ(s.paths[1].load.Get(b).query, 0.3);
  // The default load before the first path reaches both paths, unless the
  // path overrides it.
  EXPECT_DOUBLE_EQ(s.paths[0].load.Get(c).query, 0.1);
  EXPECT_DOUBLE_EQ(s.paths[1].load.Get(c).query, 0.4);
}

TEST(SpecParserTest, WorkloadAllowsLoadRedeclaredPerPath) {
  // The same class may carry a load in each path section (and in the
  // default section) — only a repeat within one section is an error.
  Result<WorkloadSpec> spec = ParseWorkloadSpec(kWorkloadSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
}

TEST(SpecParserTest, WorkloadDuplicateLoadInOneSectionRejected) {
  std::string bad = kWorkloadSpec;
  bad += "load B 0.9 0.9 0.9\nload B 0.1 0.1 0.1\n";
  Result<WorkloadSpec> spec = ParseWorkloadSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("duplicate load"),
            std::string::npos);
}

TEST(SpecParserTest, WorkloadDuplicateBudgetRejected) {
  std::string bad = kWorkloadSpec;
  bad += "budget 99\n";
  Result<WorkloadSpec> spec = ParseWorkloadSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("duplicate budget"),
            std::string::npos);
}

TEST(SpecParserTest, WorkloadWithoutPathsRejected) {
  EXPECT_FALSE(ParseWorkloadSpec("class A 10 10 1\n").ok());
}

TEST(SpecParserTest, WorkloadSpecFileDrivesTheWorkloadAdvisor) {
  Result<WorkloadSpec> spec =
      ParseWorkloadSpecFile(std::string(PATHIX_SOURCE_DIR) +
                            "/examples/specs/vehicle_workload.pix");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  WorkloadSpec& s = spec.value();
  ASSERT_EQ(s.paths.size(), 3u);
  ASSERT_TRUE(s.has_budget);
  Result<WorkloadRecommendation> rec = AdviseWorkload(
      s.schema, s.catalog, s.paths, s.options, s.joint_options);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  // The shipped budget binds and stays respected.
  EXPECT_LE(rec.value().joint.total_storage_bytes,
            s.joint_options.storage_budget_bytes + 1e-6);
  EXPECT_LE(rec.value().total_cost_greedy,
            rec.value().total_cost_independent + 1e-9);
}

constexpr const char* kTraceSpec = R"(
class A 1000 100 1
class B 500 50 2
class C 100 100 1
ref A to_b B multi
ref B to_c C
attr C name string
path A to_b to_c name
orgs MX NIX NONE

populate A 400
populate B 200 0 1.5
populate C 50 50
trace_seed 99

phase hot 1000
mix A 0.8 0.1 0.1

phase cold 500
mix A 0.1 0.5 0.4
mix C 0.2 0.0 0.0
)";

TEST(SpecParserTest, ParsesACompleteTraceSpec) {
  Result<TraceSpec> spec = ParseTraceSpec(kTraceSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const TraceSpec& s = spec.value();
  EXPECT_EQ(s.seed, 99u);
  ASSERT_EQ(s.populate.size(), 3u);
  EXPECT_EQ(s.populate[0].count, 400);
  // Defaulted distinct pool: a tenth of the objects.
  EXPECT_EQ(s.populate[0].distinct_values, 40);
  EXPECT_DOUBLE_EQ(s.populate[1].nin, 1.5);
  EXPECT_EQ(s.populate[2].distinct_values, 50);
  ASSERT_EQ(s.phases.size(), 2u);
  EXPECT_EQ(s.phases[0].name, "hot");
  EXPECT_EQ(s.phases[0].ops, 1000u);
  EXPECT_DOUBLE_EQ(s.phases[0].mix().Get(s.schema.FindClass("A")).query, 0.8);
  EXPECT_DOUBLE_EQ(s.phases[1].mix().Get(s.schema.FindClass("C")).query, 0.2);
  ASSERT_EQ(s.options.orgs.size(), 3u);
  EXPECT_EQ(s.options.orgs[2], IndexOrg::kNone);
}

TEST(SpecParserTest, TraceDirectivesRejectedOutsideTraceSpecs) {
  std::string bad = kGoodSpec;
  bad += "phase hot 100\n";
  Result<AdvisorSpec> spec = ParseAdvisorSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("only valid in trace specs"),
            std::string::npos);
}

TEST(SpecParserTest, TraceMixBeforePhaseRejected) {
  const char* bad =
      "class A 10 10 1\nattr A name string\npath A name\n"
      "populate A 10\nmix A 1 0 0\nphase hot 10\n";
  Result<TraceSpec> spec = ParseTraceSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("mix before the first phase"),
            std::string::npos);
}

TEST(SpecParserTest, TracePhaseWithoutMixRejected) {
  const char* bad =
      "class A 10 10 1\nattr A name string\npath A name\n"
      "populate A 10\nphase hot 10\n";
  Result<TraceSpec> spec = ParseTraceSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("has no positive mix weights"),
            std::string::npos);
  // All-zero weights are as empty as no mix lines at all: the phase could
  // never execute an operation.
  const char* zero =
      "class A 10 10 1\nattr A name string\npath A name\n"
      "populate A 10\nphase hot 10\nmix A 0 0 0\nphase cold 10\nmix A 1 0 0\n";
  Result<TraceSpec> zero_spec = ParseTraceSpec(zero);
  ASSERT_FALSE(zero_spec.ok());
  EXPECT_NE(zero_spec.status().message().find("'hot' has no positive"),
            std::string::npos);
}

TEST(SpecParserTest, TraceNumericRangesAreBounded) {
  // Out-of-range values must be line-numbered errors, never UB casts.
  const char* big_seed =
      "class A 10 10 1\nattr A name string\npath A name\n"
      "populate A 10\ntrace_seed 5000000000\nphase hot 10\nmix A 1 0 0\n";
  EXPECT_FALSE(ParseTraceSpec(big_seed).ok());
  const char* big_pop =
      "class A 10 10 1\nattr A name string\npath A name\n"
      "populate A 2000000000000\nphase hot 10\nmix A 1 0 0\n";
  EXPECT_FALSE(ParseTraceSpec(big_pop).ok());
  const char* big_phase =
      "class A 10 10 1\nattr A name string\npath A name\n"
      "populate A 10\nphase hot 1e16\nmix A 1 0 0\n";
  EXPECT_FALSE(ParseTraceSpec(big_phase).ok());
}

TEST(SpecParserTest, TraceRequiresPopulateAndPhases) {
  const char* no_populate =
      "class A 10 10 1\nattr A name string\npath A name\n"
      "phase hot 10\nmix A 1 0 0\n";
  EXPECT_FALSE(ParseTraceSpec(no_populate).ok());
  const char* no_phase =
      "class A 10 10 1\nattr A name string\npath A name\npopulate A 10\n";
  EXPECT_FALSE(ParseTraceSpec(no_phase).ok());
}

TEST(SpecParserTest, TraceDuplicatePopulateAndMixRejected) {
  std::string dup_pop = kTraceSpec;
  dup_pop += "populate A 5\n";
  // populate must precede phases structurally? No — but a duplicate class is
  // an error wherever it appears.
  EXPECT_FALSE(ParseTraceSpec(dup_pop).ok());
  std::string dup_mix = kTraceSpec;
  dup_mix += "mix B 1 2 3\n";  // first B mix of phase 'cold': fine
  ASSERT_TRUE(ParseTraceSpec(dup_mix).ok());
  dup_mix += "mix B 1 2 3\n";
  EXPECT_FALSE(ParseTraceSpec(dup_mix).ok());
}

TEST(SpecParserTest, TraceClassesOutsidePathScopeRejected) {
  std::string bad = kTraceSpec;
  bad += "class D 10 10 1\n";
  // D is declared but not in scope(A.to_b.to_c.name).
  std::string bad_mix = bad + "mix D 1 0 0\n";
  Result<TraceSpec> mixed = ParseTraceSpec(bad_mix);
  ASSERT_FALSE(mixed.ok());
  EXPECT_NE(mixed.status().message().find("is not in the scope of path"),
            std::string::npos);
  std::string bad_pop = bad + "populate D 5\n";
  EXPECT_FALSE(ParseTraceSpec(bad_pop).ok());
}

TEST(SpecParserTest, TraceSpecFileShipsThreePhases) {
  Result<TraceSpec> spec = ParseTraceSpecFile(
      std::string(PATHIX_SOURCE_DIR) +
      "/examples/specs/vehicle_drift_trace.pix");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const TraceSpec& s = spec.value();
  ASSERT_EQ(s.paths.size(), 1u);
  EXPECT_EQ(s.paths[0].id, "default");
  EXPECT_EQ(s.paths[0].path.ToString(s.schema), "Person.owns.man.divs.name");
  ASSERT_EQ(s.phases.size(), 3u);
  EXPECT_EQ(s.phases[0].name, "registry");
  EXPECT_EQ(s.phases[1].name, "ingest");
  EXPECT_EQ(s.phases[2].name, "audit");
  EXPECT_EQ(s.populate.size(), 6u);
}

// ------------------------------------------------- multi-path trace specs

constexpr const char* kJointTraceSpec = R"(
class A 1000 100 1
class B 500 50 2
class C 100 100 1
ref A to_b B multi
ref B to_c C
attr C name string

path deep A to_b to_c name
path tail B to_c name
orgs MX NIX NONE
budget 50000

populate A 400
populate B 200 0 1.5
populate C 50 50
trace_seed 99

phase hot 1000
mix deep A 0.7 0.1 0.1
mix tail B 0.1 0.0 0.0

phase cold 500
mix deep A 0.1 0.5 0.4
mix tail C 0.2 0.0 0.0
)";

TEST(SpecParserTest, ParsesAMultiPathTraceSpecWithBudget) {
  Result<TraceSpec> spec = ParseTraceSpec(kJointTraceSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const TraceSpec& s = spec.value();
  ASSERT_EQ(s.paths.size(), 2u);
  EXPECT_EQ(s.paths[0].id, "deep");
  EXPECT_EQ(s.paths[1].id, "tail");
  EXPECT_TRUE(s.has_budget);
  EXPECT_DOUBLE_EQ(s.storage_budget_bytes, 50000);
  const ClassId a = s.schema.FindClass("A");
  const ClassId b = s.schema.FindClass("B");
  const ClassId c = s.schema.FindClass("C");
  ASSERT_EQ(s.phases.size(), 2u);
  // Queries bind to their named path; updates are path-agnostic and land
  // in the resolved per-path mixes of every path whose scope has the class.
  EXPECT_DOUBLE_EQ(s.phases[0].queries[0].at(a), 0.7);
  EXPECT_EQ(s.phases[0].queries[1].count(a), 0u);
  EXPECT_DOUBLE_EQ(s.phases[0].queries[1].at(b), 0.1);
  EXPECT_DOUBLE_EQ(s.phases[0].updates.at(a).insert, 0.1);
  EXPECT_DOUBLE_EQ(s.phases[0].mixes[0].Get(a).query, 0.7);
  EXPECT_DOUBLE_EQ(s.phases[0].mixes[0].Get(a).insert, 0.1);
  // A is outside tail's scope: its churn does not enter tail's mix.
  EXPECT_DOUBLE_EQ(s.phases[0].mixes[1].Get(a).insert, 0.0);
  EXPECT_DOUBLE_EQ(s.phases[1].mixes[1].Get(c).query, 0.2);
}

TEST(SpecParserTest, TraceMixOnUndeclaredPathRejectedWithLineNumber) {
  std::string bad = kJointTraceSpec;
  bad += "mix sideways C 0.5 0 0\n";
  Result<TraceSpec> spec = ParseTraceSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("line"), std::string::npos);
  EXPECT_NE(spec.status().message().find(
                "path 'sideways', which is not declared"),
            std::string::npos);
}

TEST(SpecParserTest, MultiPathTracesRequireNamedPaths) {
  // An unnamed path is fine while it is alone, but the moment a second one
  // is declared the trace is unusable (mix lines cannot direct queries), so
  // the declaration itself is rejected — with the unnamed path's line.
  const char* bad =
      "class A 10 10 1\nclass B 5 5 1\nref A to_b B\nattr B name string\n"
      "path A to_b name\n"
      "path tail B name\n"
      "populate A 10\nphase hot 10\nmix tail B 1 0 0\n";
  Result<TraceSpec> spec = ParseTraceSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("line 5"), std::string::npos)
      << spec.status().message();
  EXPECT_NE(spec.status().message().find("require named paths"),
            std::string::npos);
  // Workload specs (no mixes) keep accepting unnamed paths.
  const char* workload =
      "class A 10 10 1\nclass B 5 5 1\nref A to_b B\nattr B name string\n"
      "path A to_b name\n"
      "path tail B name\n";
  EXPECT_TRUE(ParseWorkloadSpec(workload).ok());
}

TEST(SpecParserTest, MultiPathTraceMixMustNameItsPath) {
  std::string bad = kJointTraceSpec;
  bad += "mix C 0.5 0 0\n";
  Result<TraceSpec> spec = ParseTraceSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("must name the path"),
            std::string::npos);
}

TEST(SpecParserTest, TraceQueryOutsideNamedPathScopeRejectedWithLine) {
  // A is in deep's scope but not in tail's ([B, C]).
  std::string bad = kJointTraceSpec;
  bad += "mix tail A 0.5 0 0\n";
  Result<TraceSpec> spec = ParseTraceSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("line 26"), std::string::npos)
      << spec.status().message();
  EXPECT_NE(spec.status().message().find(
                "'A' is not in the scope of path 'tail'"),
            std::string::npos);
}

TEST(SpecParserTest, TraceUpdateOutsideEveryPathScopeRejectedWithLine) {
  // D is declared but in neither path's scope; its zero query weight passes
  // the per-path check, so the path-agnostic update check must fire.
  std::string bad = kJointTraceSpec;
  bad += "class D 10 10 1\nmix deep D 0 0.5 0\n";
  Result<TraceSpec> spec = ParseTraceSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find(
                "'D' is not in any declared path's scope"),
            std::string::npos)
      << spec.status().message();
}

TEST(SpecParserTest, DuplicateUpdateWeightsPerPhaseRejected) {
  // B's churn may be declared once per phase, whichever path names it.
  std::string bad = kJointTraceSpec;
  bad += "mix deep B 0.0 0.1 0.0\nmix tail B 0.0 0.2 0.0\n";
  Result<TraceSpec> spec = ParseTraceSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("updates are path-agnostic"),
            std::string::npos)
      << spec.status().message();
}

TEST(SpecParserTest, DuplicateAndCollidingPathNamesRejected) {
  std::string dup = kJointTraceSpec;
  dup = dup.substr(0, dup.find("orgs")) +
        "path deep A to_b to_c name\n" + dup.substr(dup.find("orgs"));
  Result<TraceSpec> spec = ParseTraceSpec(dup);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("duplicate path name 'deep'"),
            std::string::npos);

  // The other collision direction: a `path NAME ...` whose first token is a
  // declared class always parses as the unnamed form, so a name can never
  // shadow an existing class; declaring a class *after* a path of that name
  // is the case that needs the explicit rejection.
  const char* collide =
      "class A 10 10 1\nclass B 5 5 1\nref A to_b B\nattr B name string\n"
      "path deep A to_b name\nclass deep 10 10 1\n";
  Result<WorkloadSpec> w = ParseWorkloadSpec(collide);
  ASSERT_FALSE(w.ok());
  EXPECT_NE(w.status().message().find("collides with a path name"),
            std::string::npos)
      << w.status().message();
}

TEST(SpecParserTest, SinglePathSpecsStillRejectSecondPaths) {
  std::string bad = kGoodSpec;
  bad += "path Division name\n";
  Result<AdvisorSpec> spec = ParseAdvisorSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("only one path per spec"),
            std::string::npos);
}

TEST(SpecParserTest, JointTraceSpecFileShipsTwoPathsAndABindingBudget) {
  Result<TraceSpec> spec = ParseTraceSpecFile(
      std::string(PATHIX_SOURCE_DIR) +
      "/examples/specs/vehicle_joint_trace.pix");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const TraceSpec& s = spec.value();
  ASSERT_EQ(s.paths.size(), 2u);
  EXPECT_EQ(s.paths[0].id, "people");
  EXPECT_EQ(s.paths[1].id, "fleet");
  EXPECT_EQ(s.paths[0].path.ToString(s.schema), "Person.owns.man.divs.name");
  EXPECT_EQ(s.paths[1].path.ToString(s.schema), "Vehicle.man.divs.name");
  EXPECT_TRUE(s.has_budget);
  ASSERT_EQ(s.phases.size(), 3u);
}

TEST(SpecParserTest, DocumentStoreSpecFileParsesAndAdvises) {
  Result<AdvisorSpec> spec =
      ParseAdvisorSpecFile(std::string(PATHIX_SOURCE_DIR) +
                           "/examples/specs/document_store.pix");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  AdvisorSpec& s = spec.value();
  EXPECT_EQ(s.path.ToString(s.schema), "Submission.review.forum.name");
  Result<Recommendation> rec =
      AdviseIndexConfiguration(s.schema, s.path, s.catalog, s.load, s.options);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(rec.value().result.config.Validate(s.path.length()).ok());
}

}  // namespace
}  // namespace pathix
