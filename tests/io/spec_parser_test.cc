#include "io/spec_parser.h"

#include <gtest/gtest.h>

namespace pathix {
namespace {

constexpr const char* kGoodSpec = R"(
# comment line
page_size 2048
class A 1000 100 1
class B 500 50 2
class B2 : B 250 25 1
class C 100 100 1
ref A to_b B multi
ref B to_c C
attr C name string
path A to_b to_c name
load A 0.5 0.1 0.1
load B 0.2 0.1 0.1   # trailing comment
load C 0.1 0.1 0.1
)";

TEST(SpecParserTest, ParsesACompleteSpec) {
  Result<AdvisorSpec> spec = ParseAdvisorSpec(kGoodSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  AdvisorSpec& s = spec.value();
  EXPECT_EQ(s.schema.num_classes(), 4);
  EXPECT_EQ(s.path.length(), 3);
  EXPECT_EQ(s.path.ToString(s.schema), "A.to_b.to_c.name");
  EXPECT_DOUBLE_EQ(s.catalog.params().page_size, 2048);
  EXPECT_DOUBLE_EQ(s.catalog.GetClassStats(s.schema.FindClass("B")).nin, 2);
  EXPECT_DOUBLE_EQ(s.load.Get(s.schema.FindClass("A")).query, 0.5);
  // Subclass wiring.
  EXPECT_EQ(s.schema.GetClass(s.schema.FindClass("B2")).superclass(),
            s.schema.FindClass("B"));
}

TEST(SpecParserTest, ParsedSpecDrivesTheAdvisor) {
  AdvisorSpec s = ParseAdvisorSpec(kGoodSpec).value();
  Result<Recommendation> rec =
      AdviseIndexConfiguration(s.schema, s.path, s.catalog, s.load, s.options);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(rec.value().result.config.Validate(3).ok());
}

TEST(SpecParserTest, OrgsAndMatchingKeysDirectives) {
  std::string text = kGoodSpec;
  text += "\norgs MX NIX PX\nmatching_keys 12\n";
  AdvisorSpec s = ParseAdvisorSpec(text).value();
  ASSERT_EQ(s.options.orgs.size(), 3u);
  EXPECT_EQ(s.options.orgs[2], IndexOrg::kPX);
  EXPECT_DOUBLE_EQ(s.options.query_profile.matching_keys, 12);
}

TEST(SpecParserTest, ErrorsCarryLineNumbers) {
  const char* bad = "class A 10 10 1\nbogus directive\n";
  Result<AdvisorSpec> spec = ParseAdvisorSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("line 2"), std::string::npos);
}

TEST(SpecParserTest, UnknownClassInRefRejected) {
  const char* bad = "class A 10 10 1\nref A to_b Ghost\npath A to_b\n";
  EXPECT_FALSE(ParseAdvisorSpec(bad).ok());
}

TEST(SpecParserTest, UnknownSuperclassRejected) {
  EXPECT_FALSE(ParseAdvisorSpec("class B : Ghost 10 10 1\n").ok());
}

TEST(SpecParserTest, MissingPathRejected) {
  EXPECT_FALSE(ParseAdvisorSpec("class A 10 10 1\n").ok());
}

TEST(SpecParserTest, DuplicatePathRejected) {
  const char* bad =
      "class A 10 10 1\nclass C 5 5 1\nref A to_c C\nattr C n string\n"
      "path A to_c n\npath A to_c n\n";
  EXPECT_FALSE(ParseAdvisorSpec(bad).ok());
}

TEST(SpecParserTest, NonNumericStatisticsRejected) {
  EXPECT_FALSE(ParseAdvisorSpec("class A ten 10 1\npath A x\n").ok());
}

TEST(SpecParserTest, NegativeLoadRejected) {
  const char* bad =
      "class A 10 10 1\nattr A n string\npath A n\nload A -1 0 0\n";
  EXPECT_FALSE(ParseAdvisorSpec(bad).ok());
}

TEST(SpecParserTest, BadOrgTokenRejected) {
  const char* bad =
      "class A 10 10 1\nattr A n string\npath A n\norgs HASH\n";
  EXPECT_FALSE(ParseAdvisorSpec(bad).ok());
}

TEST(SpecParserTest, InvalidPathAttributeRejected) {
  const char* bad = "class A 10 10 1\npath A ghost\n";
  Result<AdvisorSpec> spec = ParseAdvisorSpec(bad);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("ghost"), std::string::npos);
}

TEST(SpecParserTest, MissingFileIsNotFound) {
  Result<AdvisorSpec> spec = ParseAdvisorSpecFile("/nonexistent/x.pix");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kNotFound);
}

TEST(SpecParserTest, VehicleSpecFileMatchesExample51) {
  // The shipped spec reproduces the canned Example 5.1 recommendation.
  Result<AdvisorSpec> spec =
      ParseAdvisorSpecFile(std::string(PATHIX_SOURCE_DIR) +
                           "/examples/specs/vehicle.pix");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  AdvisorSpec& s = spec.value();
  const Recommendation rec =
      AdviseIndexConfiguration(s.schema, s.path, s.catalog, s.load, s.options)
          .value();
  EXPECT_EQ(rec.result.config.ToString(s.schema, s.path),
            "{(Person.owns.man, NIX), (Company.divs.name, MX)}");
}

TEST(SpecParserTest, DocumentStoreSpecFileParsesAndAdvises) {
  Result<AdvisorSpec> spec =
      ParseAdvisorSpecFile(std::string(PATHIX_SOURCE_DIR) +
                           "/examples/specs/document_store.pix");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  AdvisorSpec& s = spec.value();
  EXPECT_EQ(s.path.ToString(s.schema), "Submission.review.forum.name");
  Result<Recommendation> rec =
      AdviseIndexConfiguration(s.schema, s.path, s.catalog, s.load, s.options);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(rec.value().result.config.Validate(s.path.length()).ok());
}

}  // namespace
}  // namespace pathix
