// The log-bucketed histogram's math, pinned: exact bucket boundaries
// (lower-inclusive, binary-fraction sub-buckets so there is no float
// ambiguity at the edges), saturation behavior, and the percentile bracket
// guarantee checked against a brute-force sorted reference on randomized
// inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "obs/metrics.h"

namespace pathix::obs {
namespace {

TEST(HistogramBucketsTest, EverythingBelowOneIsBucketZero) {
  EXPECT_EQ(HistogramBuckets::BucketFor(0.0), 0);
  EXPECT_EQ(HistogramBuckets::BucketFor(0.999999), 0);
  EXPECT_EQ(HistogramBuckets::BucketFor(-5.0), 0);
  EXPECT_EQ(HistogramBuckets::BucketFor(std::nan("")), 0);
  EXPECT_EQ(HistogramBuckets::LowerBound(0), 0.0);
  EXPECT_EQ(HistogramBuckets::UpperBound(0), 1.0);
}

TEST(HistogramBucketsTest, BoundariesAreLowerInclusive) {
  // Every bucket's lower bound lands in that bucket; the value just below
  // (previous representable double) lands in the bucket before it.
  for (int b = 1; b < HistogramBuckets::kBucketCount - 1; ++b) {
    const double lower = HistogramBuckets::LowerBound(b);
    EXPECT_EQ(HistogramBuckets::BucketFor(lower), b) << "lower(" << b << ")";
    const double below = std::nextafter(lower, 0.0);
    EXPECT_EQ(HistogramBuckets::BucketFor(below), b - 1)
        << "just below lower(" << b << ")";
  }
}

TEST(HistogramBucketsTest, UpperBoundIsNextLowerBound) {
  for (int b = 0; b < HistogramBuckets::kBucketCount - 2; ++b) {
    EXPECT_EQ(HistogramBuckets::UpperBound(b),
              HistogramBuckets::LowerBound(b + 1));
  }
  EXPECT_TRUE(std::isinf(
      HistogramBuckets::UpperBound(HistogramBuckets::kBucketCount - 1)));
}

TEST(HistogramBucketsTest, FirstOctaveSubBuckets) {
  // Octave 0 splits [1, 2) into 8 linear sub-buckets of width 1/8.
  EXPECT_EQ(HistogramBuckets::BucketFor(1.0), 1);
  EXPECT_EQ(HistogramBuckets::BucketFor(1.124999), 1);
  EXPECT_EQ(HistogramBuckets::BucketFor(1.125), 2);
  EXPECT_EQ(HistogramBuckets::BucketFor(1.875), 8);
  EXPECT_EQ(HistogramBuckets::BucketFor(1.9999), 8);
  EXPECT_EQ(HistogramBuckets::BucketFor(2.0), 9);  // next octave
}

TEST(HistogramBucketsTest, RelativeWidthIsBounded) {
  // Log bucketing's point: every bucket above 1 is at most 12.5% wide
  // relative to its lower bound.
  for (int b = 1; b < HistogramBuckets::kBucketCount - 1; ++b) {
    const double lower = HistogramBuckets::LowerBound(b);
    const double upper = HistogramBuckets::UpperBound(b);
    EXPECT_LE((upper - lower) / lower, 0.125 + 1e-12) << "bucket " << b;
  }
}

TEST(HistogramBucketsTest, Saturation) {
  const double limit = std::ldexp(1.0, HistogramBuckets::kOctaves);  // 2^40
  EXPECT_EQ(HistogramBuckets::BucketFor(std::nextafter(limit, 0.0)),
            HistogramBuckets::kBucketCount - 2);
  EXPECT_EQ(HistogramBuckets::BucketFor(limit),
            HistogramBuckets::kBucketCount - 1);
  EXPECT_EQ(HistogramBuckets::BucketFor(1e300),
            HistogramBuckets::kBucketCount - 1);
  EXPECT_EQ(HistogramBuckets::LowerBound(HistogramBuckets::kBucketCount - 1),
            limit);
}

TEST(HistogramTest, CountSumMinMaxExact) {
  Histogram h;
  h.Observe(3);
  h.Observe(0.25);
  h.Observe(1000);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 1003.25);
  EXPECT_EQ(h.Max(), 1000);
  const HistogramData data = h.Snapshot();
  EXPECT_EQ(data.min, 0.25);
  EXPECT_EQ(data.max, 1000);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.Percentile(1.0), 0);
}

TEST(HistogramTest, SaturationBucketReportsExactMax) {
  Histogram h;
  h.Observe(1.0);
  h.Observe(1e15);  // way past 2^40
  EXPECT_EQ(h.Percentile(1.0), 1e15);
  EXPECT_EQ(h.Percentile(0.99), 1e15);
}

TEST(HistogramTest, PercentileNeverExceedsMax) {
  Histogram h;
  h.Observe(100);  // alone in its bucket: representative capped at max
  EXPECT_EQ(h.Percentile(0.5), 100);
  EXPECT_EQ(h.Percentile(1.0), 100);
}

// The documented contract, against brute force: for every quantile, the
// reported value r and the true order statistic t lie in the same bucket,
// with lower(bucket) <= t <= r <= min(upper(bucket), max).
TEST(HistogramTest, RandomizedPercentileBracketsBruteForce) {
  std::mt19937_64 rng(20260807);  // fixed seed: failures reproduce
  std::uniform_real_distribution<double> log_range(-2.0, 13.0);
  for (int round = 0; round < 20; ++round) {
    SCOPED_TRACE(round);
    Histogram h;
    std::vector<double> values;
    const int n = 1 + static_cast<int>(rng() % 400);
    values.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const double v = std::pow(10.0, log_range(rng));
      values.push_back(v);
      h.Observe(v);
    }
    std::sort(values.begin(), values.end());
    for (const double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
      SCOPED_TRACE(q);
      const std::size_t rank = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::ceil(q * static_cast<double>(values.size()))));
      const double truth = values[rank - 1];
      const double reported = h.Percentile(q);
      const int bucket = HistogramBuckets::BucketFor(truth);
      EXPECT_LE(truth, reported);
      EXPECT_LE(reported,
                std::min(HistogramBuckets::UpperBound(bucket), values.back()));
      EXPECT_GE(reported, HistogramBuckets::LowerBound(bucket));
    }
  }
}

}  // namespace
}  // namespace pathix::obs
