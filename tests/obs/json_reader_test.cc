// The JSON reader against its one job: reading back exactly what
// json_writer.h produces. Round-trips pin number fidelity (%.17g), escape
// handling, nesting and document order; the error cases pin the
// InvalidArgument-with-byte-offset contract and the depth cap.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "obs/json_reader.h"
#include "obs/json_writer.h"

namespace pathix::obs {
namespace {

TEST(JsonReaderTest, ScalarsAndTypes) {
  EXPECT_TRUE(ParseJson("null").value().is_null());
  EXPECT_TRUE(ParseJson("true").value().AsBool());
  EXPECT_FALSE(ParseJson("false").value().AsBool(true));
  EXPECT_DOUBLE_EQ(ParseJson("-12.5e2").value().AsNumber(), -1250);
  EXPECT_EQ(ParseJson("\"hi\"").value().AsString(), "hi");
  EXPECT_TRUE(ParseJson("  [1, 2]  ").value().is_array());
  EXPECT_TRUE(ParseJson("{}").value().is_object());
}

TEST(JsonReaderTest, ObjectLookupsAndFallbacks) {
  Result<JsonValue> v =
      ParseJson(R"({"a": 1, "b": "x", "c": true, "d": null})");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v.value().NumberAt("a"), 1);
  EXPECT_EQ(v.value().StringAt("b"), "x");
  EXPECT_TRUE(v.value().BoolAt("c"));
  EXPECT_TRUE(v.value().Has("d"));
  EXPECT_FALSE(v.value().Has("e"));
  EXPECT_DOUBLE_EQ(v.value().NumberAt("e", 7), 7);
  EXPECT_EQ(v.value().StringAt("a", "fb"), "fb");  // wrong type -> fallback
  ASSERT_NE(v.value().Find("d"), nullptr);
  EXPECT_TRUE(v.value().Find("d")->is_null());
}

TEST(JsonReaderTest, MembersKeepDocumentOrder) {
  Result<JsonValue> v = ParseJson(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v.value().members().size(), 3u);
  EXPECT_EQ(v.value().members()[0].first, "z");
  EXPECT_EQ(v.value().members()[1].first, "a");
  EXPECT_EQ(v.value().members()[2].first, "m");
}

TEST(JsonReaderTest, EscapesAndUnicode) {
  Result<JsonValue> v = ParseJson(R"("a\"b\\c\nd\u0041")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().AsString(), "a\"b\\c\ndA");
  // Multi-byte UTF-8 from \u escapes.
  EXPECT_EQ(ParseJson(R"("\u00e9")").value().AsString(), "\xc3\xa9");
}

TEST(JsonReaderTest, RoundTripsTheWriter) {
  JsonWriter w;
  w.BeginObject()
      .Key("pi").Value(3.141592653589793)
      .Key("neg").Value(-0.0625)
      .Key("big").Value(1e18)
      .Key("n").Value(static_cast<std::uint64_t>(1234567890123456789ULL))
      .Key("s").Value(std::string("sp\"ec\\ial\n"))
      .Key("flag").Value(true)
      .Key("nothing").Null();
  w.Key("arr").BeginArray().Value(1.0).Value(2.0).EndArray();
  w.Key("nested").BeginObject().Key("k").Value("v").EndObject();
  w.EndObject();

  Result<JsonValue> v = ParseJson(w.str());
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_DOUBLE_EQ(v.value().NumberAt("pi"), 3.141592653589793);
  EXPECT_DOUBLE_EQ(v.value().NumberAt("neg"), -0.0625);
  EXPECT_DOUBLE_EQ(v.value().NumberAt("big"), 1e18);
  EXPECT_DOUBLE_EQ(v.value().NumberAt("n"), 1234567890123456789.0);
  EXPECT_EQ(v.value().StringAt("s"), "sp\"ec\\ial\n");
  EXPECT_TRUE(v.value().BoolAt("flag"));
  EXPECT_TRUE(v.value().Find("nothing")->is_null());
  ASSERT_EQ(v.value().Find("arr")->array().size(), 2u);
  EXPECT_EQ(v.value().Find("nested")->StringAt("k"), "v");
  // The writer renders non-finite doubles as null; the reader sees null.
  JsonWriter w2;
  w2.BeginObject().Key("inf").Value(std::numeric_limits<double>::infinity());
  w2.EndObject();
  EXPECT_TRUE(ParseJson(w2.str()).value().Find("inf")->is_null());
}

TEST(JsonReaderTest, ErrorsCarryByteOffsets) {
  const auto expect_invalid = [](const char* text) {
    Result<JsonValue> v = ParseJson(text);
    EXPECT_FALSE(v.ok()) << text;
    EXPECT_NE(v.status().ToString().find("at byte"), std::string::npos);
  };
  expect_invalid("");
  expect_invalid("{");
  expect_invalid("[1,]");
  expect_invalid("{\"a\" 1}");
  expect_invalid("\"unterminated");
  expect_invalid("tru");
  expect_invalid("1 2");  // trailing garbage
  expect_invalid("\"\\u12\"");
  expect_invalid("\"\\ud800\"");  // lone surrogate
}

TEST(JsonReaderTest, DepthCapRejectsDeepNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
  std::string ok_depth(40, '[');
  ok_depth += std::string(40, ']');
  EXPECT_TRUE(ParseJson(ok_depth).ok());
}

}  // namespace
}  // namespace pathix::obs
