// JsonWriter: the single escaping/comma authority behind every JSON
// artifact the project writes. These tests pin the exact output bytes —
// downstream parsers (obs_smoke.py, bench_trend.py) rely on them.

#include "obs/json_writer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace pathix::obs {
namespace {

TEST(JsonWriterTest, FlatObject) {
  JsonWriter w;
  w.BeginObject()
      .Key("name")
      .Value("bench_online")
      .Key("ops")
      .Value(std::uint64_t{12000})
      .Key("ok")
      .Value(true)
      .EndObject();
  EXPECT_EQ(w.str(), R"({"name":"bench_online","ops":12000,"ok":true})");
}

TEST(JsonWriterTest, NestedArraysAndObjects) {
  JsonWriter w;
  w.BeginObject()
      .Key("xs")
      .BeginArray()
      .Value(1)
      .Value(2)
      .BeginObject()
      .Key("y")
      .Null()
      .EndObject()
      .EndArray()
      .Key("empty")
      .BeginArray()
      .EndArray()
      .EndObject();
  EXPECT_EQ(w.str(), R"({"xs":[1,2,{"y":null}],"empty":[]})");
}

TEST(JsonWriterTest, EscapesKeysAndValues) {
  JsonWriter w;
  w.BeginObject().Key("a\"b\\c").Value("line\nbreak\ttab\x01z").EndObject();
  EXPECT_EQ(w.str(), "{\"a\\\"b\\\\c\":\"line\\nbreak\\ttab\\u0001z\"}");
}

TEST(JsonWriterTest, Utf8PassesThrough) {
  JsonWriter w;
  w.BeginArray().Value("naïve — ok").EndArray();
  EXPECT_EQ(w.str(), "[\"naïve — ok\"]");
}

TEST(JsonWriterTest, DoubleRendering) {
  JsonWriter w;
  w.BeginArray()
      .Value(0.0)
      .Value(3.0)  // integral double: no exponent, no decimal point
      .Value(-17.0)
      .Value(0.5)
      .Value(std::numeric_limits<double>::infinity())
      .Value(std::nan(""))
      .EndArray();
  EXPECT_EQ(w.str(), "[0,3,-17,0.5,null,null]");
}

TEST(JsonWriterTest, DoubleRoundTripsThroughShortestForm) {
  const double v = 0.1 + 0.2;  // classic non-representable sum
  JsonWriter w;
  w.BeginArray().Value(v).EndArray();
  const std::string s = w.str();
  const double parsed = std::stod(s.substr(1, s.size() - 2));
  EXPECT_EQ(parsed, v);
}

TEST(JsonWriterTest, SignedIntegers) {
  JsonWriter w;
  w.BeginArray()
      .Value(std::int64_t{-9007199254740993})
      .Value(std::uint64_t{18446744073709551615u})
      .EndArray();
  EXPECT_EQ(w.str(), "[-9007199254740993,18446744073709551615]");
}

TEST(JsonWriterTest, RootScalar) {
  JsonWriter w;
  w.Value("just a string");
  EXPECT_EQ(w.str(), "\"just a string\"");
}

TEST(JsonWriterTest, AppendEscapedAllControls) {
  std::string out;
  JsonWriter::AppendEscaped(&out, std::string_view("\b\f\n\r\t\x1f", 6));
  EXPECT_EQ(out, "\\b\\f\\n\\r\\t\\u001f");
}

}  // namespace
}  // namespace pathix::obs
