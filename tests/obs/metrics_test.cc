// MetricsRegistry semantics (stable handles, label normalization,
// snapshots) and the two exporters. The Prometheus assertions pin the
// exposition-format details a scraper depends on: TYPE lines, sanitized
// names, escaped label values, cumulative buckets with a +Inf terminator.

#include <gtest/gtest.h>

#include <string>

#include "obs/export.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace pathix::obs {
namespace {

TEST(CounterTest, IncrementIgnoresNonPositiveDeltas) {
  Counter c;
  c.Increment();
  c.Increment(2.5);
  c.Increment(0);
  c.Increment(-10);
  EXPECT_DOUBLE_EQ(c.Value(), 3.5);
  c.MirrorTo(42);
  EXPECT_DOUBLE_EQ(c.Value(), 42);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_DOUBLE_EQ(g.Value(), 7);
}

TEST(MetricsRegistryTest, HandlesAreStableAndShared) {
  MetricsRegistry reg;
  Counter& a = reg.CounterAt("ops", {{"kind", "query"}});
  Counter& b = reg.CounterAt("ops", {{"kind", "query"}});
  EXPECT_EQ(&a, &b);
  Counter& other = reg.CounterAt("ops", {{"kind", "insert"}});
  EXPECT_NE(&a, &other);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotMatter) {
  MetricsRegistry reg;
  Counter& a = reg.CounterAt("ops", {{"kind", "query"}, {"path", "p"}});
  Counter& b = reg.CounterAt("ops", {{"path", "p"}, {"kind", "query"}});
  EXPECT_EQ(&a, &b);
  a.Increment();
  const MetricsSnapshot snap = reg.Snapshot();
  // Find() sorts its argument too, so either spelling resolves.
  EXPECT_EQ(snap.Value("ops", {{"path", "p"}, {"kind", "query"}}), 1);
}

TEST(MetricsRegistryTest, SnapshotCapturesAllTypes) {
  MetricsRegistry reg;
  reg.CounterAt("c").Increment(5);
  reg.GaugeAt("g").Set(-2);
  reg.HistogramAt("h").Observe(10);
  reg.HistogramAt("h").Observe(20);
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.Value("c"), 5);
  EXPECT_EQ(snap.Value("g"), -2);
  const MetricSample* h = snap.Find("h", {});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->type, MetricType::kHistogram);
  EXPECT_EQ(h->histogram.count, 2u);
  EXPECT_DOUBLE_EQ(h->histogram.sum, 30);
}

TEST(MetricsRegistryTest, SumOfAddsEverySeries) {
  MetricsRegistry reg;
  reg.CounterAt("ops", {{"kind", "a"}}).Increment(3);
  reg.CounterAt("ops", {{"kind", "b"}}).Increment(4);
  reg.HistogramAt("other").Observe(100);  // histograms excluded from SumOf
  EXPECT_DOUBLE_EQ(reg.Snapshot().SumOf("ops"), 7);
}

TEST(PrometheusExportTest, CountersAndGauges) {
  MetricsRegistry reg;
  reg.CounterAt("pathix_ops_total", {{"kind", "query"}}).Increment(12);
  reg.GaugeAt("pathix_live").Set(3);
  const std::string text = ToPrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE pathix_live gauge\n"), std::string::npos);
  EXPECT_NE(text.find("pathix_live 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pathix_ops_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("pathix_ops_total{kind=\"query\"} 12\n"),
            std::string::npos);
}

TEST(PrometheusExportTest, OneTypeLinePerFamily) {
  MetricsRegistry reg;
  reg.CounterAt("ops", {{"kind", "a"}}).Increment();
  reg.CounterAt("ops", {{"kind", "b"}}).Increment();
  const std::string text = ToPrometheusText(reg.Snapshot());
  const std::string type_line = "# TYPE ops counter\n";
  const std::size_t first = text.find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(type_line, first + 1), std::string::npos);
}

TEST(PrometheusExportTest, SanitizesNamesAndEscapesLabelValues) {
  MetricsRegistry reg;
  reg.CounterAt("2bad-name.metric", {{"path", "a\"b\\c\nd"}}).Increment();
  const std::string text = ToPrometheusText(reg.Snapshot());
  // Leading digit and punctuation become '_'; the label value is escaped.
  EXPECT_NE(text.find("_bad_name_metric{path=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(PrometheusExportTest, HistogramExposition) {
  MetricsRegistry reg;
  Histogram& h = reg.HistogramAt("lat", {{"kind", "q"}});
  h.Observe(0.5);  // bucket 0 (le="1")
  h.Observe(0.5);
  h.Observe(3);    // le="3.25"
  h.Observe(2e12); // past 2^40: saturation, only counted in +Inf
  const std::string text = ToPrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE lat histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{kind=\"q\",le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_bucket{kind=\"q\",le=\"3.25\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_bucket{kind=\"q\",le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_count{kind=\"q\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum{kind=\"q\"} 2000000000004\n"),
            std::string::npos);
}

TEST(JsonExportTest, SnapshotRendersAndNests) {
  MetricsRegistry reg;
  reg.CounterAt("c", {{"k", "v"}}).Increment(2);
  reg.HistogramAt("h").Observe(5);
  JsonWriter w;
  WriteMetricsJson(&w, reg.Snapshot());
  const std::string json = w.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(
      json.find(
          R"({"name":"c","type":"counter","labels":{"k":"v"},"value":2})"),
      std::string::npos);
  EXPECT_NE(json.find(R"("name":"h","type":"histogram","count":1,"sum":5)"),
            std::string::npos);
  EXPECT_NE(json.find(R"("buckets":[{"le":)"), std::string::npos);
}

}  // namespace
}  // namespace pathix::obs
