// MetricsRegistry semantics (stable handles, label normalization,
// snapshots) and the two exporters. The Prometheus assertions pin the
// exposition-format details a scraper depends on: TYPE lines, sanitized
// names, escaped label values, cumulative buckets with a +Inf terminator.

#include <gtest/gtest.h>

#include <string>

#include "obs/export.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "storage/pager.h"

namespace pathix::obs {
namespace {

TEST(CounterTest, IncrementIgnoresNonPositiveDeltas) {
  Counter c;
  c.Increment();
  c.Increment(2.5);
  c.Increment(0);
  c.Increment(-10);
  EXPECT_DOUBLE_EQ(c.Value(), 3.5);
  c.MirrorTo(42);
  EXPECT_DOUBLE_EQ(c.Value(), 42);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_DOUBLE_EQ(g.Value(), 7);
}

TEST(MetricsRegistryTest, HandlesAreStableAndShared) {
  MetricsRegistry reg;
  Counter& a = reg.CounterAt("ops", {{"kind", "query"}});
  Counter& b = reg.CounterAt("ops", {{"kind", "query"}});
  EXPECT_EQ(&a, &b);
  Counter& other = reg.CounterAt("ops", {{"kind", "insert"}});
  EXPECT_NE(&a, &other);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotMatter) {
  MetricsRegistry reg;
  Counter& a = reg.CounterAt("ops", {{"kind", "query"}, {"path", "p"}});
  Counter& b = reg.CounterAt("ops", {{"path", "p"}, {"kind", "query"}});
  EXPECT_EQ(&a, &b);
  a.Increment();
  const MetricsSnapshot snap = reg.Snapshot();
  // Find() sorts its argument too, so either spelling resolves.
  EXPECT_EQ(snap.Value("ops", {{"path", "p"}, {"kind", "query"}}), 1);
}

TEST(MetricsRegistryTest, SnapshotCapturesAllTypes) {
  MetricsRegistry reg;
  reg.CounterAt("c").Increment(5);
  reg.GaugeAt("g").Set(-2);
  reg.HistogramAt("h").Observe(10);
  reg.HistogramAt("h").Observe(20);
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.Value("c"), 5);
  EXPECT_EQ(snap.Value("g"), -2);
  const MetricSample* h = snap.Find("h", {});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->type, MetricType::kHistogram);
  EXPECT_EQ(h->histogram.count, 2u);
  EXPECT_DOUBLE_EQ(h->histogram.sum, 30);
}

TEST(MetricsRegistryTest, SumOfAddsEverySeries) {
  MetricsRegistry reg;
  reg.CounterAt("ops", {{"kind", "a"}}).Increment(3);
  reg.CounterAt("ops", {{"kind", "b"}}).Increment(4);
  reg.HistogramAt("other").Observe(100);  // histograms excluded from SumOf
  EXPECT_DOUBLE_EQ(reg.Snapshot().SumOf("ops"), 7);
}

TEST(PrometheusExportTest, CountersAndGauges) {
  MetricsRegistry reg;
  reg.CounterAt("pathix_ops_total", {{"kind", "query"}}).Increment(12);
  reg.GaugeAt("pathix_live").Set(3);
  const std::string text = ToPrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE pathix_live gauge\n"), std::string::npos);
  EXPECT_NE(text.find("pathix_live 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pathix_ops_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("pathix_ops_total{kind=\"query\"} 12\n"),
            std::string::npos);
}

TEST(PrometheusExportTest, OneTypeLinePerFamily) {
  MetricsRegistry reg;
  reg.CounterAt("ops", {{"kind", "a"}}).Increment();
  reg.CounterAt("ops", {{"kind", "b"}}).Increment();
  const std::string text = ToPrometheusText(reg.Snapshot());
  const std::string type_line = "# TYPE ops counter\n";
  const std::size_t first = text.find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(type_line, first + 1), std::string::npos);
}

TEST(PrometheusExportTest, SanitizesNamesAndEscapesLabelValues) {
  MetricsRegistry reg;
  reg.CounterAt("2bad-name.metric", {{"path", "a\"b\\c\nd"}}).Increment();
  const std::string text = ToPrometheusText(reg.Snapshot());
  // Leading digit and punctuation become '_'; the label value is escaped.
  EXPECT_NE(text.find("_bad_name_metric{path=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(PrometheusExportTest, HistogramExposition) {
  MetricsRegistry reg;
  Histogram& h = reg.HistogramAt("lat", {{"kind", "q"}});
  h.Observe(0.5);  // bucket 0 (le="1")
  h.Observe(0.5);
  h.Observe(3);    // le="3.25"
  h.Observe(2e12); // past 2^40: saturation, only counted in +Inf
  const std::string text = ToPrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE lat histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{kind=\"q\",le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_bucket{kind=\"q\",le=\"3.25\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_bucket{kind=\"q\",le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_count{kind=\"q\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum{kind=\"q\"} 2000000000004\n"),
            std::string::npos);
}

TEST(JsonExportTest, SnapshotRendersAndNests) {
  MetricsRegistry reg;
  reg.CounterAt("c", {{"k", "v"}}).Increment(2);
  reg.HistogramAt("h").Observe(5);
  JsonWriter w;
  WriteMetricsJson(&w, reg.Snapshot());
  const std::string json = w.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(
      json.find(
          R"({"name":"c","type":"counter","labels":{"k":"v"},"value":2})"),
      std::string::npos);
  EXPECT_NE(json.find(R"("name":"h","type":"histogram","count":1,"sum":5)"),
            std::string::npos);
  EXPECT_NE(json.find(R"("buckets":[{"le":)"), std::string::npos);
}


TEST(DeltaSinceTest, HistogramWindowSubtractsBucketwise) {
  Histogram h;
  h.Observe(10);
  h.Observe(100);
  const HistogramData before = h.Snapshot();
  h.Observe(1000);
  h.Observe(1000);
  h.Observe(3);
  const HistogramData delta = h.Snapshot().DeltaSince(before);

  EXPECT_EQ(delta.count, 3u);
  EXPECT_DOUBLE_EQ(delta.sum, 2003);
  // The window holds {3, 1000, 1000}: p50 brackets 1000's bucket, and the
  // earlier observations (10, 100) are gone from every rank.
  EXPECT_LT(delta.Percentile(0.01), 10);
  EXPECT_GE(delta.Percentile(0.50), 1000);
  EXPECT_LE(delta.Percentile(0.50),
            HistogramBuckets::UpperBound(HistogramBuckets::BucketFor(1000)));
  // min/max degrade to bucket bounds, capped by the all-time exact max.
  EXPECT_LE(delta.min, 3);
  EXPECT_LE(delta.max, h.Max());
  EXPECT_GE(delta.max, 1000);
}

TEST(DeltaSinceTest, EmptyWindowIsEmptyData) {
  Histogram h;
  h.Observe(5);
  const HistogramData snap = h.Snapshot();
  const HistogramData delta = snap.DeltaSince(snap);
  EXPECT_EQ(delta.count, 0u);
  EXPECT_DOUBLE_EQ(delta.Percentile(0.5), 0);
  // Against a never-observed baseline the whole history is the window.
  const HistogramData all = snap.DeltaSince(HistogramData{});
  EXPECT_EQ(all.count, 1u);
  EXPECT_DOUBLE_EQ(all.sum, 5);
}

TEST(DeltaSinceTest, SnapshotCountersSubtractGaugesStay) {
  MetricsRegistry reg;
  reg.CounterAt("ops").Increment(10);
  reg.GaugeAt("depth").Set(4);
  reg.HistogramAt("lat").Observe(50);
  const MetricsSnapshot before = reg.Snapshot();

  reg.CounterAt("ops").Increment(7);
  reg.GaugeAt("depth").Set(9);
  reg.HistogramAt("lat").Observe(70);
  reg.CounterAt("fresh").Increment(2);  // absent from the baseline
  const MetricsSnapshot delta = reg.Snapshot().DeltaSince(before);

  EXPECT_DOUBLE_EQ(delta.Value("ops"), 7);
  EXPECT_DOUBLE_EQ(delta.Value("depth"), 9);  // point-in-time, not a delta
  EXPECT_DOUBLE_EQ(delta.Value("fresh"), 2);  // taken whole
  const MetricSample* lat = delta.Find("lat", {});
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->histogram.count, 1u);
  EXPECT_DOUBLE_EQ(lat->histogram.sum, 70);
}

TEST(PagerExportTest, MirrorsBufferHitsPerOpAndPath) {
  // Regression: ExportMetrics used to mirror buffer_hits only globally —
  // the per-op-kind and per-path series omitted the hits field, so
  // buffered runs under-reported per-path traffic in Prometheus/JSON.
  Pager pager(4096);
  pager.EnableBuffer(4);
  {
    ScopedAccessProbe probe(&pager, PageOpKind::kQuery, "people");
    pager.NoteRead(1);   // miss
    pager.NoteRead(1);   // hit
    pager.NoteRead(1);   // hit
    pager.NoteWrite(2);  // absorbed into the dirty frame
  }
  MetricsRegistry reg;
  pager.ExportMetrics(&reg);
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Value("pathix_pager_buffer_hits_total"), 2);
  EXPECT_DOUBLE_EQ(snap.Value("pathix_pager_pages_total",
                              {{"op", "query"}, {"io", "hit"}}),
                   2);
  EXPECT_DOUBLE_EQ(snap.Value("pathix_pager_pages_total",
                              {{"op", "query"}, {"io", "read"}}),
                   1);
  EXPECT_DOUBLE_EQ(snap.Value("pathix_pager_path_pages_total",
                              {{"path", "people"}, {"io", "hit"}}),
                   2);
  EXPECT_DOUBLE_EQ(snap.Value("pathix_pager_path_pages_total",
                              {{"path", "people"}, {"io", "read"}}),
                   1);
  // The absorbed write is not charged anywhere yet (write-back).
  EXPECT_DOUBLE_EQ(snap.Value("pathix_pager_pages_total",
                              {{"op", "query"}, {"io", "write"}}),
                   0);
  EXPECT_DOUBLE_EQ(snap.Value("pathix_pager_io_total", {{"io", "write"}}), 0);

  // Disabling flushes the pool: the dirty frame surfaces as a write-back
  // and every resident frame as an eviction; re-export converges.
  pager.EnableBuffer(0);
  pager.ExportMetrics(&reg);
  const MetricsSnapshot after = reg.Snapshot();
  EXPECT_DOUBLE_EQ(after.Value("pathix_pager_buffer_writebacks_total"), 1);
  EXPECT_DOUBLE_EQ(after.Value("pathix_pager_buffer_evictions_total"), 2);
  EXPECT_DOUBLE_EQ(after.Value("pathix_pager_io_total", {{"io", "write"}}),
                   1);
}

}  // namespace
}  // namespace pathix::obs
