// ObsSpan/Tracer: B/E pairing (including across an enable toggle),
// nesting order, args on end events, and the Trace Event JSON rendering
// that chrome://tracing / Perfetto loads.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace pathix::obs {
namespace {

std::vector<TraceEvent> Collect(Tracer* tracer,
                                const std::function<void(Tracer*)>& body) {
  tracer->SetEnabled(true);
  body(tracer);
  tracer->SetEnabled(false);
  return tracer->Snapshot();
}

TEST(TracerTest, DisabledSpansRecordNothing) {
  Tracer tracer;
  {
    ObsSpan span(&tracer, "noop", "test");
    span.AddArg("x", 1.0);
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, SpanEmitsBalancedBeginEnd) {
  Tracer tracer;
  const std::vector<TraceEvent> events = Collect(&tracer, [](Tracer* t) {
    ObsSpan span(t, "work", "test");
    EXPECT_TRUE(span.active());
  });
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].phase, 'E');
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[1].name, "work");
  EXPECT_EQ(events[0].category, "test");
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
}

TEST(TracerTest, NestedSpansCloseInLifoOrder) {
  Tracer tracer;
  const std::vector<TraceEvent> events = Collect(&tracer, [](Tracer* t) {
    ObsSpan outer(t, "outer", "test");
    {
      ObsSpan inner(t, "inner", "test");
    }
    ObsSpan sibling(t, "sibling", "test");
  });
  ASSERT_EQ(events.size(), 6u);
  const auto tag = [](const TraceEvent& e) {
    return std::string(1, e.phase) + ":" + e.name;
  };
  EXPECT_EQ(tag(events[0]), "B:outer");
  EXPECT_EQ(tag(events[1]), "B:inner");
  EXPECT_EQ(tag(events[2]), "E:inner");
  EXPECT_EQ(tag(events[3]), "B:sibling");
  // Scope exit runs destructors in reverse construction order.
  EXPECT_EQ(tag(events[4]), "E:sibling");
  EXPECT_EQ(tag(events[5]), "E:outer");
}

TEST(TracerTest, SpanOpenAcrossDisableStillEnds) {
  Tracer tracer;
  tracer.SetEnabled(true);
  {
    ObsSpan span(&tracer, "crossing", "test");
    tracer.SetEnabled(false);
  }
  // The begin was recorded, so the end must be too — B/E stay balanced.
  const std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].phase, 'E');
  // And the converse: a span opened while disabled records nothing later.
  tracer.Clear();
  {
    ObsSpan span(&tracer, "late", "test");
    tracer.SetEnabled(true);
  }
  tracer.SetEnabled(false);
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, ArgsLandOnEndEvent) {
  Tracer tracer;
  const std::vector<TraceEvent> events = Collect(&tracer, [](Tracer* t) {
    ObsSpan span(t, "commit", "test");
    span.AddArg("modeled_pages", 128.0);
    span.AddArg("config", "NIX(1,4)");
  });
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[0].num_args.empty());
  EXPECT_TRUE(events[0].str_args.empty());
  ASSERT_EQ(events[1].num_args.size(), 1u);
  EXPECT_EQ(events[1].num_args[0].first, "modeled_pages");
  EXPECT_EQ(events[1].num_args[0].second, 128.0);
  ASSERT_EQ(events[1].str_args.size(), 1u);
  EXPECT_EQ(events[1].str_args[0].second, "NIX(1,4)");
}

TEST(TracerTest, TraceEventJsonShape) {
  Tracer tracer;
  Collect(&tracer, [](Tracer* t) {
    ObsSpan span(t, "solve \"quoted\"", "controller");
    span.AddArg("pages", 42.0);
  });
  const std::string json = tracer.ToTraceEventJson();
  // Document envelope and one B/E pair with escaped name.
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"name\":\"solve \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"controller\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"pages\":42}"), std::string::npos);
}

TEST(TracerTest, EmptyTracerStillRendersValidDocument) {
  Tracer tracer;
  EXPECT_EQ(tracer.ToTraceEventJson(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
}

TEST(TracerTest, CurrentThreadIdIsStablePerThread) {
  const int here = Tracer::CurrentThreadId();
  EXPECT_EQ(Tracer::CurrentThreadId(), here);
  int other = -1;
  std::thread t([&other] { other = Tracer::CurrentThreadId(); });
  t.join();
  EXPECT_NE(other, here);
}

}  // namespace
}  // namespace pathix::obs
