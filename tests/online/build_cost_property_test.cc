// Satellite differential property: for random small configurations, the
// pager-measured build I/O of the physical registry agrees with the
// transition model's analytic estimate —
//  - the scan side EXACTLY (both read every segment page of every class in
//    each built part's scope, once);
//  - the write side within a documented factor (analytic StorageBytes of
//    the organization model vs the pages the built structures actually
//    occupy): factor 4, asymmetric reality of record rounding, node fill
//    and per-class tree overheads included.
// Failures log the generating seed so the offending configuration can be
// replayed.

#include <gtest/gtest.h>

#include <random>

#include "datagen/generator.h"
#include "datagen/paper_schema.h"
#include "exec/analyze.h"
#include "online/transition_cost.h"

namespace pathix {
namespace {

constexpr double kWriteFactor = 4.0;

/// A random configuration of the 4-level Example 5.1 path: random split
/// points, random organization per part.
IndexConfiguration RandomConfiguration(std::mt19937* rng) {
  const IndexOrg orgs[] = {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX,
                           IndexOrg::kNone};
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<std::size_t> org(0, 3);
  std::vector<IndexedSubpath> parts;
  int start = 1;
  for (int l = 1; l <= 4; ++l) {
    const bool close = l == 4 || coin(*rng) == 1;
    if (close) {
      parts.push_back(IndexedSubpath{Subpath{start, l}, orgs[org(*rng)]});
      start = l + 1;
    }
  }
  return IndexConfiguration(parts);
}

TEST(BuildCostPropertyTest, MeasuredBuildIoTracksTheAnalyticEstimate) {
  for (const std::uint32_t seed : {11u, 42u, 271u, 828u, 1828u, 31415u}) {
    std::mt19937 rng(seed);
    const PaperSetup setup = MakeExample51Setup();
    SimDatabase db(setup.schema, PhysicalParams{});
    PathDataGenerator gen(seed);
    gen.Populate(&db, setup.path,
                 {
                     {setup.division, 40, 40, 1.0},
                     {setup.company, 40, 0, 3.0},
                     {setup.vehicle, 300, 0, 2.0},
                     {setup.bus, 150, 0, 2.0},
                     {setup.truck, 150, 0, 2.0},
                     {setup.person, 3000, 0, 1.0},
                 });
    const IndexConfiguration config = RandomConfiguration(&rng);

    // The analytic estimate first: nothing installed, everything built.
    const Catalog catalog = CollectStatistics(db.store(), setup.schema,
                                              setup.path, PhysicalParams{});
    const PathContext ctx =
        PathContext::Build(setup.schema, setup.path, catalog,
                           LoadDistribution{})
            .value();
    const TransitionCost analytic =
        EstimateTransitionCost(ctx, db.store(), nullptr, config);

    CheckOk(db.ConfigureIndexes(setup.path, config));
    const AccessStats measured = db.registry().cumulative_build_io();

    SCOPED_TRACE("seed " + std::to_string(seed) + " config " +
                 config.ToString());
    EXPECT_DOUBLE_EQ(static_cast<double>(measured.reads),
                     analytic.scan_pages);
    if (analytic.write_pages == 0) {
      // All-kNone configurations materialize nothing on either side.
      EXPECT_EQ(measured.writes, 0u);
    } else {
      EXPECT_LE(static_cast<double>(measured.writes),
                analytic.write_pages * kWriteFactor);
      EXPECT_LE(analytic.write_pages,
                static_cast<double>(measured.writes) * kWriteFactor);
    }

    // The parts' own build_io sums to the registry's cumulative counter
    // (every part was fresh — nothing was adopted).
    AccessStats per_part;
    for (std::size_t i = 0; i < config.parts().size(); ++i) {
      per_part += db.physical().part(i)->index->build_io();
    }
    EXPECT_EQ(per_part, measured);
  }
}

TEST(BuildCostPropertyTest, AdoptedPartsAddNoBuildIo) {
  // A second path covering a structurally identical subpath adopts the live
  // structure: the registry's cumulative build I/O must not move.
  const PaperSetup setup = MakeExample51Setup();
  SimDatabase db(setup.schema, PhysicalParams{});
  PathDataGenerator gen(99);
  gen.Populate(&db, setup.path,
               {
                   {setup.division, 30, 15, 1.0},
                   {setup.company, 30, 0, 2.0},
                   {setup.vehicle, 60, 0, 1.5},
                   {setup.person, 400, 0, 1.5},
               });
  CheckOk(db.RegisterPath("a", setup.path));
  CheckOk(db.RegisterPath("b", setup.path));
  CheckOk(db.ConfigureIndexes(
      "a", IndexConfiguration({{Subpath{1, 4}, IndexOrg::kNIX}})));
  const AccessStats after_first = db.registry().cumulative_build_io();
  EXPECT_GT(after_first.total(), 0u);
  EXPECT_EQ(db.registry().parts_built(), 1u);

  CheckOk(db.ConfigureIndexes(
      "b", IndexConfiguration({{Subpath{1, 4}, IndexOrg::kNIX}})));
  EXPECT_EQ(db.registry().cumulative_build_io(), after_first);
  EXPECT_EQ(db.registry().parts_built(), 1u);
}

}  // namespace
}  // namespace pathix
