// ReconfigurationController + transition cost + physical part reuse.

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "datagen/paper_schema.h"
#include "exec/analyze.h"
#include "online/controller.h"
#include "online/transition_cost.h"

namespace pathix {
namespace {

constexpr int kDistinct = 40;

/// A populated Example 5.1 database at laptop scale.
struct Instance {
  Instance() : setup(MakeExample51Setup()), db(setup.schema, PhysicalParams{}) {
    PathDataGenerator gen(2718);
    gen.Populate(&db, setup.path,
                 {
                     {setup.division, 40, kDistinct, 1.0},
                     {setup.company, 40, 0, 3.0},
                     {setup.vehicle, 300, 0, 2.0},
                     {setup.bus, 150, 0, 2.0},
                     {setup.truck, 150, 0, 2.0},
                     {setup.person, 4000, 0, 1.0},
                 });
  }

  PathContext Context(const LoadDistribution& load) const {
    const Catalog catalog = CollectStatistics(db.store(), setup.schema,
                                              setup.path, PhysicalParams{});
    return PathContext::Build(setup.schema, setup.path, catalog, load)
        .value();
  }

  PaperSetup setup;
  SimDatabase db;
};

TEST(TransitionCostTest, UnchangedPartsAreFree) {
  Instance inst;
  const IndexConfiguration config(
      {{Subpath{1, 3}, IndexOrg::kNIX}, {Subpath{4, 4}, IndexOrg::kMX}});
  CheckOk(inst.db.ConfigureIndexes(inst.setup.path, config));
  const PathContext ctx = inst.Context(LoadDistribution{});

  const TransitionCost same = EstimateTransitionCost(
      ctx, inst.db.store(), &inst.db.physical(), config);
  EXPECT_DOUBLE_EQ(same.total(), 0.0);

  // Changing only the tail drops/builds the tail part; the [1,3] NIX stays
  // free even though it is by far the biggest structure.
  const IndexConfiguration retail(
      {{Subpath{1, 3}, IndexOrg::kNIX}, {Subpath{4, 4}, IndexOrg::kMIX}});
  const TransitionCost tail = EstimateTransitionCost(
      ctx, inst.db.store(), &inst.db.physical(), retail);
  EXPECT_GT(tail.total(), 0.0);

  const IndexConfiguration reorg(
      {{Subpath{1, 4}, IndexOrg::kNIX}});
  const TransitionCost full = EstimateTransitionCost(
      ctx, inst.db.store(), &inst.db.physical(), reorg);
  EXPECT_GT(full.drop_pages, tail.drop_pages);
  EXPECT_GT(full.scan_pages, tail.scan_pages);
}

TEST(TransitionCostTest, NonePartsBuildForFree) {
  // NoneIndex materializes nothing (Build only stores a pointer), so a
  // switch *to* "no index" must not be charged a phantom store scan.
  Instance inst;
  const PathContext ctx = inst.Context(LoadDistribution{});
  const IndexConfiguration all_none({{Subpath{1, 4}, IndexOrg::kNone}});
  const TransitionCost from_scratch =
      EstimateTransitionCost(ctx, inst.db.store(), nullptr, all_none);
  EXPECT_DOUBLE_EQ(from_scratch.total(), 0.0);

  CheckOk(inst.db.ConfigureIndexes(
      inst.setup.path, IndexConfiguration({{Subpath{1, 4}, IndexOrg::kMX}})));
  const TransitionCost drop_to_none = EstimateTransitionCost(
      ctx, inst.db.store(), &inst.db.physical(), all_none);
  EXPECT_GT(drop_to_none.drop_pages, 0.0);  // the MX pages are freed ...
  EXPECT_DOUBLE_EQ(drop_to_none.scan_pages, 0.0);  // ... nothing is built
  EXPECT_DOUBLE_EQ(drop_to_none.write_pages, 0.0);
}

TEST(TransitionCostTest, FromScratchPricesEveryPart) {
  Instance inst;
  const PathContext ctx = inst.Context(LoadDistribution{});
  const IndexConfiguration config({{Subpath{1, 4}, IndexOrg::kNIX}});
  const TransitionCost cost =
      EstimateTransitionCost(ctx, inst.db.store(), nullptr, config);
  EXPECT_DOUBLE_EQ(cost.drop_pages, 0.0);
  EXPECT_GT(cost.scan_pages, 0.0);
  EXPECT_GT(cost.write_pages, 0.0);
}

TEST(ReconfigureIndexesTest, ReusesIdenticalPartsPhysically) {
  Instance inst;
  CheckOk(inst.db.ConfigureIndexes(
      inst.setup.path,
      IndexConfiguration(
          {{Subpath{1, 3}, IndexOrg::kNIX}, {Subpath{4, 4}, IndexOrg::kMX}})));
  const SubpathIndex* kept = inst.db.physical().indexes()[0];

  CheckOk(inst.db.ReconfigureIndexes(IndexConfiguration(
      {{Subpath{1, 3}, IndexOrg::kNIX}, {Subpath{4, 4}, IndexOrg::kMIX}})));
  // The [1,3] NIX is the same physical object, not a rebuild.
  EXPECT_EQ(inst.db.physical().indexes()[0], kept);
  EXPECT_EQ(inst.db.physical().indexes()[1]->org(), IndexOrg::kMIX);
  CheckOk(inst.db.ValidateIndexesDeep());

  // The reused configuration keeps answering queries and absorbing updates.
  const Result<std::vector<Oid>> indexed =
      inst.db.Query(Key::FromString(EndingValue(3)), inst.setup.person);
  const Result<std::vector<Oid>> naive =
      inst.db.QueryNaive(Key::FromString(EndingValue(3)), inst.setup.person);
  CheckOk(indexed.status());
  CheckOk(naive.status());
  EXPECT_EQ(indexed.value(), naive.value());
}

TEST(ReconfigureIndexesTest, RequiresAConfiguredPath) {
  Instance inst;
  EXPECT_FALSE(
      inst.db
          .ReconfigureIndexes(
              IndexConfiguration({{Subpath{1, 4}, IndexOrg::kMX}}))
          .ok());
}

TEST(ControllerTest, InstallsAfterWarmupAndReportsTheEvent) {
  Instance inst;
  inst.db.SetQueryPath(inst.setup.path);
  ControllerOptions options;
  options.warmup_ops = 50;
  options.check_interval_ops = 50;
  ReconfigurationController controller(&inst.db, inst.setup.path, options);
  inst.db.SetObserver(&controller);

  for (int i = 0; i < 50; ++i) {
    CheckOk(inst.db.QueryNaive(Key::FromString(EndingValue(i % kDistinct)),
                               inst.setup.person)
                .status());
  }
  inst.db.SetObserver(nullptr);

  CheckOk(controller.status());
  EXPECT_TRUE(inst.db.has_indexes());
  ASSERT_EQ(controller.events().size(), 1u);
  EXPECT_TRUE(controller.events()[0].initial);
  EXPECT_GT(controller.transition_pages_charged(), 0.0);
  // A pure query load never indexes nothing.
  EXPECT_GT(inst.db.physical().config().degree(), 0);
}

TEST(ControllerTest, EscapesAHandInstalledForeignOrgConfiguration) {
  // The installed configuration uses an organization outside the
  // controller's candidate set ({MX, MIX, NIX} by default); the selector
  // must price it from the model — not a wrong matrix column — and the
  // controller must then switch away under a query-heavy stream, for which
  // "no index" is by far the worst choice.
  Instance inst;
  CheckOk(inst.db.ConfigureIndexes(
      inst.setup.path,
      IndexConfiguration({{Subpath{1, 4}, IndexOrg::kNone}})));
  ControllerOptions options;
  options.warmup_ops = 50;
  options.check_interval_ops = 50;
  ReconfigurationController controller(&inst.db, inst.setup.path, options);
  inst.db.SetObserver(&controller);
  for (int i = 0; i < 300; ++i) {
    CheckOk(inst.db.Query(Key::FromString(EndingValue(i % kDistinct)),
                          inst.setup.person)
                .status());
  }
  inst.db.SetObserver(nullptr);
  CheckOk(controller.status());
  ASSERT_FALSE(controller.events().empty());
  EXPECT_FALSE(controller.events()[0].initial);  // it was a switch
  bool still_none = false;
  for (const IndexedSubpath& part : inst.db.physical().config().parts()) {
    if (part.org == IndexOrg::kNone) still_none = true;
  }
  EXPECT_FALSE(still_none);
}

TEST(ControllerTest, ScopedAnalyzeRecollectsOnlyDriftedClasses) {
  Instance inst;
  inst.db.SetQueryPath(inst.setup.path);
  ReconfigurationController controller(&inst.db, inst.setup.path);

  // First check: the initial collection covers all six scope classes
  // (Person, Vehicle, Bus, Truck, Company, Division).
  controller.CheckNow();
  EXPECT_EQ(controller.analyzer().refreshes(), 1u);
  EXPECT_EQ(controller.analyzer().class_collections(), 6u);

  // Nothing moved: the next check re-analyzes nothing at all.
  controller.CheckNow();
  EXPECT_EQ(controller.analyzer().refreshes(), 1u);
  EXPECT_EQ(controller.analyzer().class_collections(), 6u);

  // Only Person churns (well past the 10% threshold); the other five
  // classes are untouched and must not be re-analyzed.
  for (int i = 0; i < 1000; ++i) inst.db.Insert(inst.setup.person, {});
  controller.CheckNow();
  EXPECT_EQ(controller.analyzer().refreshes(), 2u);
  EXPECT_EQ(controller.analyzer().class_collections(), 7u);

  // Sub-threshold drift on Vehicle (300 live, 10 < 10%) stays scoped out.
  for (int i = 0; i < 10; ++i) inst.db.Insert(inst.setup.vehicle, {});
  controller.CheckNow();
  EXPECT_EQ(controller.analyzer().class_collections(), 7u);
}

TEST(ControllerTest, HysteresisBlocksMarginalSwitches) {
  // Two controllers see the same drifting stream; the infinitely-reluctant
  // one must never switch after its initial install.
  for (const bool reluctant : {false, true}) {
    Instance inst;
    inst.db.SetQueryPath(inst.setup.path);
    ControllerOptions options;
    options.warmup_ops = 50;
    options.check_interval_ops = 50;
    options.half_life_ops = 100;
    if (reluctant) {
      options.hysteresis = 1e18;  // nothing can ever pay for itself
    }
    ReconfigurationController controller(&inst.db, inst.setup.path, options);
    inst.db.SetObserver(&controller);

    for (int i = 0; i < 400; ++i) {
      CheckOk(inst.db.QueryNaive(Key::FromString(EndingValue(i % kDistinct)),
                                 inst.setup.person)
                  .status());
    }
    // Hard shift to update-heavy traffic on Person.
    for (int i = 0; i < 800; ++i) {
      inst.db.Insert(inst.setup.person, {});
    }
    inst.db.SetObserver(nullptr);

    CheckOk(controller.status());
    std::size_t switches = 0;
    for (const ReconfigurationEvent& ev : controller.events()) {
      if (!ev.initial) ++switches;
    }
    if (reluctant) {
      EXPECT_EQ(switches, 0u);
    } else {
      EXPECT_GT(switches, 0u);
    }
    CheckOk(inst.db.ValidateIndexesDeep());
  }
}

}  // namespace
}  // namespace pathix
