// Satellite acceptance: on a stationary trace the online selector converges
// to exactly the configuration the offline advisor picks for the true
// loads, and never reconfigures again (no thrashing).

#include <gtest/gtest.h>

#include "online/experiment.h"

namespace pathix {
namespace {

// A stationary two-phase trace (both phases share one mix): queries w.r.t.
// Person dominate, with a trickle of balanced churn so statistics stay put.
constexpr const char* kStationarySpec = R"(
class Person            5000 1500 1 64
class Vehicle           300  250  3 64
class Company           40   40   3 64
class Division          40   40   1 64

ref Person  owns Vehicle  multi
ref Vehicle man  Company  multi
ref Company divs Division multi
attr Division name string

path Person owns man divs name
orgs MX MIX NIX NONE

populate Person   4000 0  1.0
populate Vehicle  300  0  2.0
populate Company  40   0  3.0
populate Division 40   40 1.0
trace_seed 271828

phase steady1 2500
mix Person   0.80 0.02 0.02
mix Division 0.16 0.0  0.0

phase steady2 2500
mix Person   0.80 0.02 0.02
mix Division 0.16 0.0  0.0
)";

TEST(ConvergenceTest, StationaryTraceConvergesToOfflinePickAndNeverThrashes) {
  Result<TraceSpec> parsed = ParseTraceSpec(kStationarySpec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const TraceSpec& spec = parsed.value();

  SimDatabase db(spec.schema, spec.catalog.params());
  TraceReplayer replayer(&db, spec);
  replayer.Populate();
  db.SetQueryPath(spec.path);

  ControllerOptions options;
  options.orgs = spec.options.orgs;
  options.physical_params = spec.catalog.params();
  ReconfigurationController controller(&db, spec.path, options);
  db.SetObserver(&controller);
  for (std::size_t i = 0; i < spec.phases.size(); ++i) {
    replayer.RunPhase(i, &controller);
  }
  db.SetObserver(nullptr);
  CheckOk(controller.status());

  // Exactly one event: the initial install. No reconfiguration ever after.
  ASSERT_EQ(controller.events().size(), 1u);
  EXPECT_TRUE(controller.events()[0].initial);

  // ... and it is the offline advisor's pick for the true (stationary)
  // loads on the live data.
  ASSERT_TRUE(db.has_indexes());
  Result<OptimizeResult> offline = OfflineOptimum(
      db, spec.path, spec.options.orgs, spec.phases[0].mix);
  ASSERT_TRUE(offline.ok()) << offline.status().ToString();
  EXPECT_EQ(db.physical().config(), offline.value().config)
      << "online: " << db.physical().config().ToString()
      << " offline: " << offline.value().config.ToString();

  // The controller kept checking (drift checks ran) — it just had no
  // reason to act: savings never beat the hysteresis-weighted transition.
  EXPECT_GT(controller.checks_run(), 10u);
  CheckOk(db.ValidateIndexesDeep());
}

}  // namespace
}  // namespace pathix
