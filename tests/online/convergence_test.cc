// Satellite acceptance: on a stationary trace the online selector converges
// to exactly the configuration the offline advisor picks for the true
// loads, and never reconfigures again (no thrashing).

#include <gtest/gtest.h>

#include "online/experiment.h"

namespace pathix {
namespace {

// A stationary two-phase trace (both phases share one mix): queries w.r.t.
// Person dominate, with a trickle of balanced churn so statistics stay put.
constexpr const char* kStationarySpec = R"(
class Person            5000 1500 1 64
class Vehicle           300  250  3 64
class Company           40   40   3 64
class Division          40   40   1 64

ref Person  owns Vehicle  multi
ref Vehicle man  Company  multi
ref Company divs Division multi
attr Division name string

path Person owns man divs name
orgs MX MIX NIX NONE

populate Person   4000 0  1.0
populate Vehicle  300  0  2.0
populate Company  40   0  3.0
populate Division 40   40 1.0
trace_seed 271828

phase steady1 2500
mix Person   0.80 0.02 0.02
mix Division 0.16 0.0  0.0

phase steady2 2500
mix Person   0.80 0.02 0.02
mix Division 0.16 0.0  0.0
)";

TEST(ConvergenceTest, StationaryTraceConvergesToOfflinePickAndNeverThrashes) {
  Result<TraceSpec> parsed = ParseTraceSpec(kStationarySpec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const TraceSpec& spec = parsed.value();
  ASSERT_EQ(spec.paths.size(), 1u);
  const Path& path = spec.paths[0].path;

  SimDatabase db(spec.schema, spec.catalog.params());
  TraceReplayer replayer(&db, spec);  // registers the path under its id
  replayer.Populate();

  ControllerOptions options;
  options.orgs = spec.options.orgs;
  options.physical_params = spec.catalog.params();
  ReconfigurationController controller(&db, path, options, spec.paths[0].id);
  db.SetObserver(&controller);
  for (std::size_t i = 0; i < spec.phases.size(); ++i) {
    replayer.RunPhase(i, &controller);
  }
  db.SetObserver(nullptr);
  CheckOk(controller.status());

  // Exactly one event: the initial install. No reconfiguration ever after.
  ASSERT_EQ(controller.events().size(), 1u);
  EXPECT_TRUE(controller.events()[0].initial);

  // ... and it is the offline advisor's pick for the true (stationary)
  // loads on the live data.
  ASSERT_TRUE(db.has_indexes());
  Result<OptimizeResult> offline = OfflineOptimum(
      db, path, spec.options.orgs, spec.phases[0].mix());
  ASSERT_TRUE(offline.ok()) << offline.status().ToString();
  EXPECT_EQ(db.physical().config(), offline.value().config)
      << "online: " << db.physical().config().ToString()
      << " offline: " << offline.value().config.ToString();

  // The controller kept checking (drift checks ran) — it just had no
  // reason to act: savings never beat the hysteresis-weighted transition.
  EXPECT_GT(controller.checks_run(), 3u);

  // Adaptive cadence: with no reconfiguration to show for its checks the
  // controller backed off all the way to the interval cap, so the
  // stationary tail cost far fewer solver calls than the base schedule
  // (5000 ops / 256 would be ~19 checks).
  EXPECT_EQ(controller.cadence().current_interval(),
            options.check_interval_ops *
                static_cast<std::uint64_t>(options.cadence_max_factor));
  EXPECT_LT(controller.checks_run(), 12u);

  // Scoped ANALYZE: the balanced trickle of churn never moved any class
  // past the 10% refresh threshold — after the first full collection, no
  // class was ever re-analyzed.
  EXPECT_EQ(controller.analyzer().refreshes(), 1u);
  CheckOk(db.ValidateIndexesDeep());
}

}  // namespace
}  // namespace pathix
