// The decision ledger (tentpole of this PR): every drift check of either
// controller lands exactly one DecisionRecord — workload snapshot, scored
// candidates with why-not margins, the hysteresis inequality (modeled and,
// after a commit, measured) and the verdict. The serialized form must
// round-trip through the project's own JSON reader with every schema key
// present, and commit verdicts must equal committed reconfigurations.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/decision_log.h"
#include "obs/json_reader.h"
#include "online/decision_record.h"
#include "online/joint_experiment.h"

namespace pathix {
namespace {

TraceSpec LoadDriftSpec() {
  Result<TraceSpec> parsed = ParseTraceSpecFile(
      std::string(PATHIX_SOURCE_DIR) +
      "/examples/specs/vehicle_drift_trace.pix");
  CheckOk(parsed.status());
  return std::move(parsed).value();
}

/// Invariants common to both controllers' ledgers.
void CheckLedger(const std::vector<DecisionRecord>& decisions,
                 std::uint64_t checks, std::uint64_t committed_events,
                 const std::string& controller_label) {
  // One record per drift check, numbered 1..N in op order.
  ASSERT_EQ(decisions.size(), checks);
  std::uint64_t commit_verdicts = 0;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    const DecisionRecord& rec = decisions[i];
    EXPECT_EQ(rec.check_number, i + 1);
    EXPECT_EQ(rec.controller, controller_label);
    if (i > 0) {
      EXPECT_GE(rec.op_index, decisions[i - 1].op_index);
    }

    if (rec.verdict == "hold") {
      EXPECT_TRUE(rec.hold_reason == "no_traffic" ||
                  rec.hold_reason == "already_optimal" ||
                  rec.hold_reason == "no_savings" ||
                  rec.hold_reason == "hysteresis" ||
                  rec.hold_reason == "error")
          << rec.hold_reason;
      // The measured transition side exists only after a commit.
      EXPECT_FALSE(rec.hysteresis.has_measured);
      if (rec.hold_reason == "hysteresis") {
        EXPECT_TRUE(rec.hysteresis.evaluated);
        EXPECT_FALSE(rec.hysteresis.passed);
        EXPECT_LE(rec.hysteresis.lhs_pages, rec.hysteresis.rhs_modeled_pages);
      }
    } else {
      ASSERT_TRUE(rec.verdict == "install" || rec.verdict == "switch")
          << rec.verdict;
      ++commit_verdicts;
      EXPECT_TRUE(rec.hold_reason.empty());
      // The inequality as committed: evaluated, passed, both sides present.
      EXPECT_TRUE(rec.hysteresis.evaluated);
      EXPECT_TRUE(rec.hysteresis.passed);
      EXPECT_GT(rec.hysteresis.lhs_pages, rec.hysteresis.rhs_modeled_pages);
      EXPECT_TRUE(rec.hysteresis.has_measured);
      EXPECT_GE(rec.hysteresis.rhs_measured_pages, 0);
      if (rec.verdict == "install") {
        EXPECT_TRUE(rec.hysteresis.current_is_measured_naive);
      }
    }

    // Any record that got past the traffic gate snapshots the workload and
    // scores candidates (top-K capture is on by default).
    if (rec.hold_reason != "no_traffic" && rec.hold_reason != "error") {
      EXPECT_FALSE(rec.load.empty()) << "check " << rec.check_number;
      EXPECT_FALSE(rec.naive_pages.empty());
      ASSERT_FALSE(rec.candidates.empty());
      EXPECT_TRUE(rec.candidates.front().chosen);
      for (std::size_t c = 1; c < rec.candidates.size(); ++c) {
        const DecisionCandidate& cand = rec.candidates[c];
        if (cand.chosen) continue;  // joint: several chosen per-path rows
        EXPECT_FALSE(cand.why_not.empty());
        EXPECT_GE(cand.cost_delta, 0) << "alternatives cannot beat the "
                                         "optimum";
      }
    }
  }
  EXPECT_EQ(commit_verdicts, committed_events);
}

/// The serialized ledger must parse with the project's own reader and carry
/// every schema key (what scripts/obs_smoke.py and pathix_explain check
/// out-of-process, pinned here in-process).
void CheckSerializedRoundTrip(const std::vector<DecisionRecord>& decisions) {
  obs::DecisionLog log;
  for (const DecisionRecord& rec : decisions) WriteDecisionRecord(&log, rec);
  ASSERT_EQ(log.records(), decisions.size());

  std::size_t start = 0;
  std::size_t line_no = 0;
  const std::string& text = log.str();
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos);  // every record is newline-terminated
    Result<obs::JsonValue> parsed =
        obs::ParseJson(text.substr(start, end - start));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    const obs::JsonValue& v = parsed.value();
    EXPECT_EQ(v.StringAt("type"), "decision");
    for (const char* key : {"check", "op_index", "controller", "phase",
                            "verdict", "hold_reason", "workload", "search",
                            "candidates", "hysteresis"}) {
      EXPECT_TRUE(v.Has(key)) << key;
    }
    const obs::JsonValue* hyst = v.Find("hysteresis");
    ASSERT_NE(hyst, nullptr);
    // Both sides of the inequality are always present as keys; the
    // measured side is null until a commit.
    for (const char* key : {"lhs_pages", "modeled", "rhs_modeled_pages",
                            "measured", "rhs_measured_pages", "passed"}) {
      EXPECT_TRUE(hyst->Has(key)) << key;
    }
    const DecisionRecord& rec = decisions[line_no];
    EXPECT_EQ(static_cast<std::uint64_t>(hyst->Find("measured")->is_object()),
              static_cast<std::uint64_t>(rec.hysteresis.has_measured));
    EXPECT_EQ(v.Find("candidates")->array().size(), rec.candidates.size());
    start = end + 1;
    ++line_no;
  }
  EXPECT_EQ(line_no, decisions.size());
}

TEST(DecisionLedgerTest, SingleControllerLedgersEveryCheck) {
  const TraceSpec spec = LoadDriftSpec();
  ASSERT_EQ(spec.paths.size(), 1u);
  ControllerOptions options;
  options.orgs = spec.options.orgs;
  options.physical_params = spec.catalog.params();

  SimDatabase db(spec.schema, spec.catalog.params());
  TraceReplayer replayer(&db, spec);
  replayer.Populate();
  ReconfigurationController controller(&db, spec.paths[0].path, options,
                                       spec.paths[0].id);
  db.SetObserver(&controller);
  std::vector<DecisionRecord> phase_sliced;
  for (std::size_t i = 0; i < spec.phases.size(); ++i) {
    const PhaseReport report = replayer.RunPhase(i, &controller);
    // The replayer's phase slice is the same records, phase-stamped.
    for (const DecisionRecord& rec : report.decisions) {
      EXPECT_EQ(rec.phase, report.name);
      phase_sliced.push_back(rec);
    }
  }
  db.SetObserver(nullptr);
  CheckOk(controller.status());

  CheckLedger(controller.decisions(), controller.checks_run(),
              controller.events_committed(), "single");
  EXPECT_GT(controller.events_committed(), 0u);
  ASSERT_EQ(phase_sliced.size(), controller.decisions().size());
  CheckSerializedRoundTrip(phase_sliced);

  // The search-effort counters fed at each drift check.
  const obs::MetricsSnapshot m = db.metrics().Snapshot();
  EXPECT_GT(m.Value("pathix_advisor_nodes_explored_total",
                    {{"controller", "single"}}),
            0);
  const obs::MetricSample* resolve = m.Find(
      "pathix_advisor_resolve_duration_us", {{"controller", "single"}});
  ASSERT_NE(resolve, nullptr);
  EXPECT_EQ(resolve->histogram.count, controller.checks_run() -
                                          /* no_traffic/pre-solve holds */
                                          [&] {
                                            std::uint64_t held = 0;
                                            for (const DecisionRecord& r :
                                                 controller.decisions()) {
                                              if (r.hold_reason ==
                                                      "no_traffic" ||
                                                  r.hold_reason == "error") {
                                                ++held;
                                              }
                                            }
                                            return held;
                                          }());
}

TEST(DecisionLedgerTest, JointControllerLedgersEveryCheck) {
  const TraceSpec spec = LoadDriftSpec();
  ControllerOptions options;
  options.orgs = spec.options.orgs;
  options.physical_params = spec.catalog.params();

  SimDatabase db(spec.schema, spec.catalog.params());
  TraceReplayer replayer(&db, spec);
  replayer.Populate();
  JointReconfigurationController controller(&db, options);
  db.SetObserver(&controller);
  for (std::size_t i = 0; i < spec.phases.size(); ++i) {
    replayer.RunPhase(i, &controller);
  }
  db.SetObserver(nullptr);
  CheckOk(controller.status());

  CheckLedger(controller.decisions(), controller.checks_run(),
              controller.events_committed(), "joint");
  EXPECT_GT(controller.events_committed(), 0u);
  CheckSerializedRoundTrip(controller.decisions());

  // Joint search stats: the B&B/exhaustive effort and the admissible bound
  // land in every solved record.
  bool saw_solved = false;
  for (const DecisionRecord& rec : controller.decisions()) {
    if (rec.hold_reason == "no_traffic" || rec.hold_reason == "error") {
      continue;
    }
    saw_solved = true;
    EXPECT_GT(rec.search.pool_entries, 0);
    EXPECT_GT(rec.search.configs_enumerated, 0);
    EXPECT_GT(rec.search.nodes_explored, 0);
    EXPECT_GE(rec.search.bound_gap, -1e-9);
  }
  EXPECT_TRUE(saw_solved);
}

TEST(DecisionLedgerTest, LedgerRingBufferBoundsRetention) {
  const TraceSpec spec = LoadDriftSpec();
  ControllerOptions options;
  options.orgs = spec.options.orgs;
  options.physical_params = spec.catalog.params();
  options.max_decision_log = 3;

  SimDatabase db(spec.schema, spec.catalog.params());
  TraceReplayer replayer(&db, spec);
  replayer.Populate();
  ReconfigurationController controller(&db, spec.paths[0].path, options,
                                       spec.paths[0].id);
  db.SetObserver(&controller);
  for (std::size_t i = 0; i < spec.phases.size(); ++i) {
    replayer.RunPhase(i, &controller);
  }
  db.SetObserver(nullptr);
  CheckOk(controller.status());

  ASSERT_GT(controller.checks_run(), 3u);
  EXPECT_EQ(controller.decisions().size(), 3u);
  EXPECT_EQ(controller.decisions_committed(), controller.checks_run());
  EXPECT_EQ(controller.decisions_evicted(), controller.checks_run() - 3);
  // The retained suffix is the newest checks.
  EXPECT_EQ(controller.decisions().back().check_number,
            controller.checks_run());
}

TEST(DecisionLedgerTest, TopKZeroKeepsRecordsButSkipsAlternatives) {
  const TraceSpec spec = LoadDriftSpec();
  ControllerOptions options;
  options.orgs = spec.options.orgs;
  options.physical_params = spec.catalog.params();
  options.decision_top_k = 0;

  SimDatabase db(spec.schema, spec.catalog.params());
  TraceReplayer replayer(&db, spec);
  replayer.Populate();
  ReconfigurationController controller(&db, spec.paths[0].path, options,
                                       spec.paths[0].id);
  db.SetObserver(&controller);
  for (std::size_t i = 0; i < spec.phases.size(); ++i) {
    replayer.RunPhase(i, &controller);
  }
  db.SetObserver(nullptr);
  CheckOk(controller.status());

  EXPECT_EQ(controller.decisions().size(), controller.checks_run());
  for (const DecisionRecord& rec : controller.decisions()) {
    if (rec.hold_reason == "no_traffic") continue;
    // The chosen candidate is always recorded; top-K alternatives are off.
    ASSERT_EQ(rec.candidates.size(), 1u);
    EXPECT_TRUE(rec.candidates.front().chosen);
  }
}

}  // namespace
}  // namespace pathix
