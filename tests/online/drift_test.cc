// Acceptance criteria of the online subsystem, on the shipped three-phase
// drift trace: total online page cost (including modeled transition
// charges) beats the best single static configuration and stays within 2x
// of the per-phase offline oracle.

#include <gtest/gtest.h>

#include "online/experiment.h"

namespace pathix {
namespace {

TEST(DriftTraceTest, OnlineBeatsBestStaticAndTracksTheOracle) {
  Result<TraceSpec> spec = ParseTraceSpecFile(
      std::string(PATHIX_SOURCE_DIR) +
      "/examples/specs/vehicle_drift_trace.pix");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec.value().phases.size(), 3u);

  Result<ExperimentReport> result =
      RunOnlineExperiment(spec.value(), ControllerOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ExperimentReport& r = result.value();

  // The drift is real: the oracle changes its configuration across phases,
  // and the online controller actually reconfigured (beyond the initial
  // install) to follow it.
  ASSERT_EQ(r.oracle_configs.size(), 3u);
  EXPECT_FALSE(r.oracle_configs[0] == r.oracle_configs[1]);
  std::size_t switches = 0;
  for (const ReconfigurationEvent& ev : r.events) {
    if (!ev.initial) ++switches;
  }
  EXPECT_GE(switches, 1u);

  // Acceptance: beat every static choice, stay within 2x of clairvoyance.
  ASSERT_GE(r.best_static, 0);
  ASSERT_GE(r.statics.size(), 2u);  // avg-mix plus distinct phase optima
  EXPECT_LT(r.online.total_cost(), r.best_static_cost());
  EXPECT_LE(r.online_vs_oracle(), 2.0);

  // Transition charges are included in the online total and are not free.
  EXPECT_GT(r.online.transition_pages(), 0.0);
  EXPECT_DOUBLE_EQ(
      r.online.total_cost(),
      r.online.measured_pages() + r.online.transition_pages());

  // The oracle is a genuine lower envelope per phase construction: no
  // static candidate (same candidate set, free install) beats it.
  for (const StaticCandidate& c : r.statics) {
    EXPECT_GE(c.run.total_cost(), r.oracle.total_cost() * 0.999);
  }
}

}  // namespace
}  // namespace pathix
