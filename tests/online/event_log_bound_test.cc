// BoundedEventLog: the controllers' event-log ring buffer. The bound caps
// retained memory on long runs; committed() keeps the all-time count the
// replayer and metrics mirror rely on, eviction-proof.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "online/controller.h"

namespace pathix {
namespace {

TEST(BoundedEventLogTest, UnboundedByDefault) {
  BoundedEventLog<int> log;
  for (int i = 0; i < 5000; ++i) log.Append(i);
  EXPECT_EQ(log.events().size(), 5000u);
  EXPECT_EQ(log.committed(), 5000u);
  EXPECT_EQ(log.evicted(), 0u);
  EXPECT_EQ(log.events().front(), 0);
}

TEST(BoundedEventLogTest, EvictsOldestBeyondBound) {
  BoundedEventLog<int> log(3);
  for (int i = 0; i < 10; ++i) log.Append(i);
  EXPECT_EQ(log.committed(), 10u);
  EXPECT_EQ(log.evicted(), 7u);
  ASSERT_EQ(log.events().size(), 3u);
  // The retained suffix, in append order.
  EXPECT_EQ(log.events()[0], 7);
  EXPECT_EQ(log.events()[1], 8);
  EXPECT_EQ(log.events()[2], 9);
}

TEST(BoundedEventLogTest, CommittedMinusEvictedIsRetained) {
  BoundedEventLog<int> log(8);
  for (int i = 0; i < 100; ++i) {
    log.Append(i);
    EXPECT_EQ(log.committed() - log.evicted(), log.events().size());
  }
}

TEST(BoundedEventLogTest, ShrinkingEvictsOnNextAppend) {
  BoundedEventLog<int> log(10);
  for (int i = 0; i < 10; ++i) log.Append(i);
  log.set_max_events(4);
  EXPECT_EQ(log.events().size(), 10u);  // shrink is lazy
  log.Append(10);
  EXPECT_EQ(log.events().size(), 4u);
  EXPECT_EQ(log.events().front(), 7);
  EXPECT_EQ(log.events().back(), 10);
  EXPECT_EQ(log.committed(), 11u);
  EXPECT_EQ(log.evicted(), 7u);
}

TEST(BoundedEventLogTest, ControllerOptionsDefaultKeepsRecentEvents) {
  // The default bound exists (long-haul runs must not grow without limit)
  // and is generous enough that every realistic trace keeps its full log.
  ControllerOptions options;
  EXPECT_EQ(options.max_event_log, 1024u);
}

TEST(BoundedEventLogTest, MoveOnlyEventsSupported) {
  BoundedEventLog<std::vector<int>> log(2);
  for (int i = 0; i < 4; ++i) log.Append(std::vector<int>{i});
  ASSERT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.events()[0].front(), 2);
  EXPECT_EQ(log.events()[1].front(), 3);
}

}  // namespace
}  // namespace pathix
