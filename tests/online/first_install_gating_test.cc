// Satellite regression: the first install on an unconfigured path is gated
// by the *priced* status quo — the measured naive-scan pages per operation —
// instead of firing unconditionally on the first drift check (the PR 4
// follow-up this PR closes). Both controllers must gate identically.

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "datagen/paper_schema.h"
#include "online/controller.h"
#include "online/joint_controller.h"

namespace pathix {
namespace {

constexpr int kDistinct = 40;

struct Instance {
  Instance() : setup(MakeExample51Setup()), db(setup.schema, PhysicalParams{}) {
    PathDataGenerator gen(2718);
    gen.Populate(&db, setup.path,
                 {
                     {setup.division, 40, kDistinct, 1.0},
                     {setup.company, 40, 0, 3.0},
                     {setup.vehicle, 300, 0, 2.0},
                     {setup.bus, 150, 0, 2.0},
                     {setup.truck, 150, 0, 2.0},
                     {setup.person, 4000, 0, 1.0},
                 });
  }

  void RunNaiveQueries(int n) {
    for (int i = 0; i < n; ++i) {
      CheckOk(db.QueryNaive(Key::FromString(EndingValue(i % kDistinct)),
                            setup.person)
                  .status());
    }
  }

  PaperSetup setup;
  SimDatabase db;
};

ControllerOptions FastOptions() {
  ControllerOptions options;
  options.warmup_ops = 50;
  options.check_interval_ops = 50;
  return options;
}

TEST(FirstInstallGatingTest, ReluctantControllerNeverInstalls) {
  // Before the fix the initial install bypassed hysteresis entirely, so an
  // infinitely-reluctant controller still installed on its first check; now
  // the measured naive cost cannot pay for the build and nothing happens.
  Instance inst;
  inst.db.SetQueryPath(inst.setup.path);
  ControllerOptions options = FastOptions();
  options.hysteresis = 1e18;
  ReconfigurationController controller(&inst.db, inst.setup.path, options);
  inst.db.SetObserver(&controller);
  inst.RunNaiveQueries(300);
  inst.db.SetObserver(nullptr);

  CheckOk(controller.status());
  EXPECT_GT(controller.checks_run(), 0u);  // checks ran — and gated
  EXPECT_TRUE(controller.events().empty());
  EXPECT_FALSE(inst.db.has_indexes());
}

TEST(FirstInstallGatingTest, TinyHorizonCannotAmortizeTheBuild) {
  // With one operation of amortization horizon, per-op savings in the tens
  // of pages cannot beat theta x a build transition in the thousands.
  Instance inst;
  inst.db.SetQueryPath(inst.setup.path);
  ControllerOptions options = FastOptions();
  options.horizon_ops = 1;
  ReconfigurationController controller(&inst.db, inst.setup.path, options);
  inst.db.SetObserver(&controller);
  inst.RunNaiveQueries(300);
  inst.db.SetObserver(nullptr);

  CheckOk(controller.status());
  EXPECT_TRUE(controller.events().empty());
  EXPECT_FALSE(inst.db.has_indexes());
}

TEST(FirstInstallGatingTest, UpdateOnlyStreamHasNothingToSave) {
  // No query has ever run naively, so the priced status quo is zero pages
  // per operation: there are no savings, and no index is built for a
  // write-only stream (before the fix, the first check installed one).
  Instance inst;
  inst.db.SetQueryPath(inst.setup.path);
  ReconfigurationController controller(&inst.db, inst.setup.path,
                                       FastOptions());
  inst.db.SetObserver(&controller);
  for (int i = 0; i < 300; ++i) inst.db.Insert(inst.setup.person, {});
  inst.db.SetObserver(nullptr);

  CheckOk(controller.status());
  EXPECT_GT(controller.checks_run(), 0u);
  EXPECT_TRUE(controller.events().empty());
  EXPECT_FALSE(inst.db.has_indexes());
}

TEST(FirstInstallGatingTest, JustifiedInstallCarriesThePricedStatusQuo) {
  // Expensive naive scans against a default controller: the install fires
  // on the first check, and the event records the measured naive cost it
  // was gated against (positive savings) plus the measured transition.
  Instance inst;
  inst.db.SetQueryPath(inst.setup.path);
  ReconfigurationController controller(&inst.db, inst.setup.path,
                                       FastOptions());
  inst.db.SetObserver(&controller);
  inst.RunNaiveQueries(60);
  inst.db.SetObserver(nullptr);

  CheckOk(controller.status());
  ASSERT_EQ(controller.events().size(), 1u);
  const ReconfigurationEvent& ev = controller.events()[0];
  EXPECT_TRUE(ev.initial);
  EXPECT_GT(ev.predicted_savings_per_op, 0.0);
  // Measured transition: no drops on a first install, and the registry's
  // build I/O of exactly the installed parts.
  EXPECT_DOUBLE_EQ(ev.measured.drop_pages, 0.0);
  EXPECT_EQ(static_cast<std::uint64_t>(ev.measured.scan_pages) +
                static_cast<std::uint64_t>(ev.measured.write_pages),
            inst.db.registry().cumulative_build_io().total());
  EXPECT_GT(controller.measured_transition_pages_charged(), 0.0);
  EXPECT_TRUE(inst.db.has_indexes());
}

TEST(FirstInstallGatingTest, JointControllerGatesIdentically) {
  for (const bool reluctant : {true, false}) {
    Instance inst;
    CheckOk(inst.db.RegisterPath("people", inst.setup.path));
    ControllerOptions options = FastOptions();
    if (reluctant) options.hysteresis = 1e18;
    JointReconfigurationController controller(&inst.db, options);
    inst.db.SetObserver(&controller);
    for (int i = 0; i < 300; ++i) {
      CheckOk(inst.db
                  .QueryNaive("people",
                              Key::FromString(EndingValue(i % kDistinct)),
                              inst.setup.person)
                  .status());
    }
    inst.db.SetObserver(nullptr);

    CheckOk(controller.status());
    EXPECT_GT(controller.checks_run(), 0u);
    if (reluctant) {
      EXPECT_TRUE(controller.events().empty());
      EXPECT_FALSE(inst.db.has_indexes("people"));
    } else {
      ASSERT_FALSE(controller.events().empty());
      EXPECT_TRUE(controller.events()[0].initial);
      EXPECT_GT(controller.events()[0].predicted_savings_per_op, 0.0);
      EXPECT_TRUE(inst.db.has_indexes("people"));
    }
  }
}

}  // namespace
}  // namespace pathix
