// Acceptance criteria of the multi-path online subsystem, on the shipped
// two-path three-phase drift trace with its binding storage budget: total
// joint online page cost (including modeled transition charges) beats the
// best static *joint* assignment and stays within 2x of the per-phase
// joint oracle.

#include <gtest/gtest.h>

#include "exec/analyze.h"
#include "online/joint_experiment.h"

namespace pathix {
namespace {

TEST(JointDriftTraceTest, OnlineBeatsBestStaticJointAndTracksTheOracle) {
  Result<TraceSpec> parsed = ParseTraceSpecFile(
      std::string(PATHIX_SOURCE_DIR) +
      "/examples/specs/vehicle_joint_trace.pix");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const TraceSpec& spec = parsed.value();
  ASSERT_EQ(spec.paths.size(), 2u);
  ASSERT_EQ(spec.phases.size(), 3u);
  ASSERT_TRUE(spec.has_budget);

  Result<JointExperimentReport> result =
      RunJointOnlineExperiment(spec, ControllerOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const JointExperimentReport& r = result.value();

  // The drift is real: the joint oracle changes its assignment across
  // phases, and the online controller reconfigured (beyond the initial
  // install) to follow it.
  ASSERT_EQ(r.oracle_configs.size(), 3u);
  EXPECT_FALSE(r.oracle_configs[0] == r.oracle_configs[1]);
  std::size_t switches = 0;
  for (const JointReconfigurationEvent& ev : r.events) {
    if (!ev.initial) ++switches;
  }
  EXPECT_GE(switches, 1u);

  // Acceptance: beat every budget-feasible static assignment, stay within
  // 2x of clairvoyance. Transition charges are part of the online total.
  ASSERT_GE(r.best_static_joint, 0);
  EXPECT_LT(r.online.total_cost(), r.best_static_joint_cost());
  EXPECT_LE(r.online_vs_oracle(), 2.0);
  EXPECT_GT(r.online.transition_pages(), 0.0);
  EXPECT_DOUBLE_EQ(
      r.online.total_cost(),
      r.online.measured_pages() + r.online.transition_pages());

  // The joint oracle is a genuine lower envelope: no budget-feasible static
  // assignment (same candidate set, free install) beats it.
  for (const JointStaticCandidate& c : r.statics) {
    if (!c.respects_budget) continue;
    EXPECT_GE(c.run.total_cost(), r.oracle.total_cost() * 0.999) << c.label;
  }
}

TEST(JointDriftTraceTest, BudgetBindsAndIsRespectedByEveryOnlineSelection) {
  Result<TraceSpec> parsed = ParseTraceSpecFile(
      std::string(PATHIX_SOURCE_DIR) +
      "/examples/specs/vehicle_joint_trace.pix");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const TraceSpec& spec = parsed.value();

  // Binding: solved without the budget, the first phase's joint optimum
  // picks a different (bigger) assignment than under it.
  TraceSpec unbudgeted = spec;
  unbudgeted.storage_budget_bytes =
      std::numeric_limits<double>::infinity();
  unbudgeted.has_budget = false;

  SimDatabase db(spec.schema, spec.catalog.params());
  TraceReplayer replayer(&db, spec);
  replayer.Populate();

  const auto solve = [&](const TraceSpec& s) {
    PhysicalParams params = s.catalog.params();
    params.page_size = static_cast<double>(db.pager().page_size());
    Catalog catalog(params);
    std::vector<PathWorkload> workloads;
    for (std::size_t p = 0; p < s.paths.size(); ++p) {
      std::set<ClassId> scope;
      const std::vector<ClassId> scope_vec =
          s.paths[p].path.Scope(s.schema);
      scope.insert(scope_vec.begin(), scope_vec.end());
      RefreshStatistics(db.store(), s.schema, s.paths[p].path, scope,
                        &catalog);
      PathWorkload w;
      w.name = s.paths[p].id;
      w.path = s.paths[p].path;
      w.load = s.phases[0].mixes[p];
      workloads.push_back(std::move(w));
    }
    AdvisorOptions advisor_options;
    advisor_options.orgs = s.options.orgs;
    CandidatePool pool =
        CandidatePool::Build(s.schema, catalog, workloads, advisor_options)
            .value();
    JointOptions joint_options;
    joint_options.storage_budget_bytes = s.storage_budget_bytes;
    return SelectJointConfiguration(pool, joint_options).value();
  };

  const JointSelectionResult budgeted = solve(spec);
  const JointSelectionResult free_solve = solve(unbudgeted);
  EXPECT_LE(budgeted.total_storage_bytes, spec.storage_budget_bytes + 1e-6);
  EXPECT_GT(free_solve.total_storage_bytes, spec.storage_budget_bytes);
  bool differs = false;
  for (std::size_t p = 0; p < budgeted.per_path.size(); ++p) {
    if (!(budgeted.per_path[p].config == free_solve.per_path[p].config)) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs) << "the shipped budget does not bind";
}

}  // namespace
}  // namespace pathix
