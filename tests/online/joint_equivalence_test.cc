// Satellite acceptance: the JointReconfigurationController with one path
// and no storage budget is the *identical* control loop as the single-path
// ReconfigurationController — same drift checks, same selections, same
// hysteresis decisions, same event log — on the same trace.

#include <gtest/gtest.h>

#include "online/experiment.h"
#include "online/joint_experiment.h"

namespace pathix {
namespace {

TEST(JointEquivalenceTest, OnePathNoBudgetMatchesSinglePathController) {
  Result<TraceSpec> parsed = ParseTraceSpecFile(
      std::string(PATHIX_SOURCE_DIR) +
      "/examples/specs/vehicle_drift_trace.pix");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const TraceSpec& spec = parsed.value();
  ASSERT_EQ(spec.paths.size(), 1u);
  ASSERT_FALSE(spec.has_budget);

  ControllerOptions options;
  options.orgs = spec.options.orgs;
  options.physical_params = spec.catalog.params();

  // Single-path controller run.
  std::vector<ReconfigurationEvent> single_events;
  std::uint64_t single_checks = 0;
  double single_charged = 0;
  {
    SimDatabase db(spec.schema, spec.catalog.params());
    TraceReplayer replayer(&db, spec);
    replayer.Populate();
    ReconfigurationController controller(&db, spec.paths[0].path, options,
                                         spec.paths[0].id);
    db.SetObserver(&controller);
    for (std::size_t i = 0; i < spec.phases.size(); ++i) {
      replayer.RunPhase(i, &controller);
    }
    db.SetObserver(nullptr);
    CheckOk(controller.status());
    single_events = controller.events();
    single_checks = controller.checks_run();
    single_charged = controller.transition_pages_charged();
  }

  // Joint controller run on the same trace (degenerate: one path, no
  // budget).
  std::vector<JointReconfigurationEvent> joint_events;
  std::uint64_t joint_checks = 0;
  double joint_charged = 0;
  {
    SimDatabase db(spec.schema, spec.catalog.params());
    TraceReplayer replayer(&db, spec);
    replayer.Populate();
    JointReconfigurationController controller(&db, options);
    db.SetObserver(&controller);
    for (std::size_t i = 0; i < spec.phases.size(); ++i) {
      replayer.RunPhase(i, &controller);
    }
    db.SetObserver(nullptr);
    CheckOk(controller.status());
    joint_events = controller.events();
    joint_checks = controller.checks_run();
    joint_charged = controller.transition_pages_charged();
  }

  // Identical control behaviour: same drift checks, same committed events
  // at the same operations, installing the same configurations.
  EXPECT_EQ(single_checks, joint_checks);
  ASSERT_EQ(single_events.size(), joint_events.size());
  ASSERT_GE(single_events.size(), 2u);  // install + at least one switch
  for (std::size_t i = 0; i < single_events.size(); ++i) {
    const ReconfigurationEvent& s = single_events[i];
    const JointReconfigurationEvent& j = joint_events[i];
    EXPECT_EQ(s.op_index, j.op_index) << "event " << i;
    EXPECT_EQ(s.initial, j.initial) << "event " << i;
    ASSERT_EQ(j.changes.size(), 1u) << "event " << i;
    EXPECT_EQ(j.changes[0].path, spec.paths[0].id);
    EXPECT_EQ(s.from, j.changes[0].from) << "event " << i;
    EXPECT_EQ(s.to, j.changes[0].to) << "event " << i;
    EXPECT_NEAR(s.transition.total(), j.transition.total(), 1e-6)
        << "event " << i;
    EXPECT_NEAR(s.measured.total(), j.measured.total(), 1e-6)
        << "event " << i;
    if (s.initial) {
      // Both controllers gate the install against the same priced status
      // quo (measured naive-scan pages per operation).
      EXPECT_NEAR(s.predicted_savings_per_op, j.predicted_savings_per_op,
                  1e-9)
          << "event " << i;
      EXPECT_GT(s.predicted_savings_per_op, 0.0);
    }
  }
  EXPECT_NEAR(single_charged, joint_charged, 1e-6);
}

}  // namespace
}  // namespace pathix
