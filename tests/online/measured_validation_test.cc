// Fast coverage of the measured-vs-modeled harness on a small embedded
// two-path trace. Unlike the whole-trace envelope test on the shipped specs
// (integration_measured_vs_modeled_test, labeled `slow`), this one runs in
// every configuration — including the sanitizer CI job, so the harness's
// observer re-attach, tally iteration and catalog plumbing stay under
// ASan/UBSan on every push.

#include <gtest/gtest.h>

#include "online/measured_validation.h"

namespace pathix {
namespace {

// Two head classes querying through one shared ending class: both paths
// produce per-path cells, and the shared tail exercises the deduped
// maintenance accounting.
constexpr const char* kSmallSpec = R"(
class H1 300 1 1
class H2 300 1 1
class M  60 60 1

ref H1 r M multi
ref H2 r M multi
attr M name string

path a H1 r name
path b H2 r name
orgs MX NIX NONE

populate H1 200 1 1.0
populate H2 200 1 1.0
populate M  50 50 1.0
trace_seed 5
measure on

phase search 600
mix a H1 0.40 0.02 0.02
mix b H2 0.40 0 0

phase churn 600
mix a H1 0.05 0.30 0.20
mix b H2 0.30 0 0
)";

TEST(MeasuredValidationTest, SmallTraceProducesComparableCells) {
  Result<TraceSpec> parsed = ParseTraceSpec(kSmallSpec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed.value().measure);

  Result<MeasuredVsModeledReport> result =
      RunMeasuredVsModeled(parsed.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const MeasuredVsModeledReport& report = result.value();

  ASSERT_EQ(report.configs.size(), 2u);
  ASSERT_EQ(report.phases.size(), 2u);
  // Both paths clear the min-query-ops bar in the search phase; path b in
  // both phases.
  ASSERT_GE(report.cells.size(), 3u);

  // At laptop scale the envelope is looser than on the shipped traces
  // (small trees, coarse page rounding), but measured and modeled must
  // stay within one order of magnitude cell by cell.
  for (const MeasuredVsModeledCell& cell : report.cells) {
    EXPECT_GT(cell.modeled_pages_per_op, 0) << cell.phase << "/" << cell.path;
    EXPECT_GT(cell.measured_pages_per_op, 0)
        << cell.phase << "/" << cell.path;
    EXPECT_LE(cell.measured_pages_per_op, cell.modeled_pages_per_op * 8)
        << cell.phase << "/" << cell.path;
    EXPECT_LE(cell.modeled_pages_per_op, cell.measured_pages_per_op * 8)
        << cell.phase << "/" << cell.path;
  }
  for (const MeasuredVsModeledPhase& phase : report.phases) {
    EXPECT_GT(phase.modeled_pages_per_op, 0) << phase.phase;
    EXPECT_LE(phase.measured_pages_per_op, phase.modeled_pages_per_op * 8)
        << phase.phase;
    EXPECT_LE(phase.modeled_pages_per_op, phase.measured_pages_per_op * 8)
        << phase.phase;
  }
}

TEST(MeasuredValidationTest, RejectsModelOnlyOrganizations) {
  Result<TraceSpec> parsed = ParseTraceSpec(kSmallSpec);
  ASSERT_TRUE(parsed.ok());
  TraceSpec spec = parsed.value();
  spec.options.orgs = {IndexOrg::kNX};
  EXPECT_FALSE(RunMeasuredVsModeled(spec).ok());
}

}  // namespace
}  // namespace pathix
