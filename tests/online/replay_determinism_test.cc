// Satellite determinism guard: replaying the same .pix trace twice produces
// byte-identical event logs, AccessStats and *decision ledgers* — including
// the scoped tallies and the ledger's workload snapshots, which must not
// leak unordered-container iteration order (or wall-clock values) into
// anything observable (the probe plumbing runs on every operation; the
// ledger is captured at every drift check). The serving engine rides the
// same pin: ServeDriver with --threads=1 is the replayer's exact op
// sequence, so its run must reproduce the identical bytes.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/decision_log.h"
#include "online/decision_record.h"
#include "online/joint_experiment.h"
#include "serve/serve_driver.h"

namespace pathix {
namespace {

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string Fmt(const AccessStats& s) {
  return std::to_string(s.reads) + "r/" + std::to_string(s.writes) + "w/" +
         std::to_string(s.buffer_hits) + "h";
}

std::string Fmt(const TransitionCost& t) {
  return Fmt(t.drop_pages) + "+" + Fmt(t.scan_pages) + "+" +
         Fmt(t.write_pages);
}

/// One run of the shipped joint trace: online controller only (the costly
/// baselines add nothing to a determinism check). \p run_phase executes
/// phase i against the attached controller and returns its PhaseReport —
/// the replayer and the single-threaded serve driver plug in here.
/// Returns the serialized event log plus every pager counter.
template <typename RunPhaseFn>
std::string LogRun(SimDatabase& db, const TraceSpec& spec,
                   RunPhaseFn&& run_phase) {
  ControllerOptions options;
  options.orgs = spec.options.orgs;
  options.physical_params = spec.catalog.params();
  options.storage_budget_bytes = spec.storage_budget_bytes;
  JointReconfigurationController controller(&db, options);
  db.SetObserver(&controller);
  std::string log;
  for (std::size_t i = 0; i < spec.phases.size(); ++i) {
    const PhaseReport report = run_phase(i, &controller);
    log += "phase " + report.name + " ops " + std::to_string(report.ops) +
           " pages " + std::to_string(report.pages) + " transition " +
           Fmt(report.transition_pages) + " measured " +
           Fmt(report.measured_transition_pages) + "\n";
  }
  db.SetObserver(nullptr);
  CheckOk(controller.status());

  for (const JointReconfigurationEvent& ev : controller.events()) {
    log += "event op " + std::to_string(ev.op_index) +
           (ev.initial ? " install" : " switch") + " savings " +
           Fmt(ev.predicted_savings_per_op) + " transition " +
           Fmt(ev.transition) + " measured " + Fmt(ev.measured) + "\n";
    for (const JointReconfigurationEvent::PathChange& change : ev.changes) {
      log += "  " + change.path + " -> " + change.to.ToString() + "\n";
    }
  }

  // The serialized decision ledger rides in the same byte-equality pin: a
  // DecisionRecord holds no wall-clock values (determinism contract of
  // online/decision_record.h), so its JSON must reproduce exactly.
  obs::DecisionLog ledger;
  for (const DecisionRecord& rec : controller.decisions()) {
    WriteDecisionRecord(&ledger, rec);
  }
  log += "decisions " + std::to_string(controller.decisions_committed()) +
         "\n" + ledger.str();

  log += "stats " + Fmt(db.pager().stats()) + "\n";
  log += "build " + Fmt(db.registry().cumulative_build_io()) + "\n";
  for (std::size_t k = 0; k < kPageOpKindCount; ++k) {
    log += std::string("tally ") + ToString(static_cast<PageOpKind>(k)) +
           " " + Fmt(db.pager().tally(static_cast<PageOpKind>(k))) + "\n";
  }
  for (const auto& [label, tally] : db.pager().label_tallies()) {
    log += "tally path " + label + " " + Fmt(tally) + "\n";
  }
  return log;
}

std::string ReplayOnce(const TraceSpec& spec) {
  SimDatabase db(spec.schema, spec.catalog.params());
  TraceReplayer replayer(&db, spec);
  replayer.Populate();
  return LogRun(db, spec,
                [&](std::size_t i, JointReconfigurationController* c) {
                  return replayer.RunPhase(i, c);
                });
}

/// The serving engine on one worker thread: per the determinism contract
/// (serve/serve_driver.h), worker 0's RNG is the replayer's stream and the
/// single shard is the replayer's pool, so this must reproduce ReplayOnce
/// byte for byte.
std::string ServeOnce(const TraceSpec& spec, int threads) {
  SimDatabase db(spec.schema, spec.catalog.params());
  ServeDriver driver(&db, spec, ServeOptions{threads});
  driver.Populate();
  return LogRun(db, spec,
                [&](std::size_t i, JointReconfigurationController* c) {
                  return driver.RunPhase(i, c).phase;
                });
}

TEST(ReplayDeterminismTest, SameTraceTwiceIsByteIdentical) {
  Result<TraceSpec> parsed = ParseTraceSpecFile(
      std::string(PATHIX_SOURCE_DIR) +
      "/examples/specs/vehicle_joint_trace.pix");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const TraceSpec& spec = parsed.value();
  ASSERT_GT(spec.paths.size(), 1u);  // the multi-path replay path

  const std::string first = ReplayOnce(spec);
  const std::string second = ReplayOnce(spec);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);

  // Re-parsing the file must also reproduce the stream (no hidden state in
  // the parsed spec).
  Result<TraceSpec> reparsed = ParseTraceSpecFile(
      std::string(PATHIX_SOURCE_DIR) +
      "/examples/specs/vehicle_joint_trace.pix");
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(first, ReplayOnce(reparsed.value()));
}

TEST(ReplayDeterminismTest, SingleThreadedServeDriverMatchesReplayer) {
  Result<TraceSpec> parsed = ParseTraceSpecFile(
      std::string(PATHIX_SOURCE_DIR) +
      "/examples/specs/vehicle_joint_trace.pix");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const TraceSpec& spec = parsed.value();

  // Event log, decision ledger, every pager counter: identical bytes.
  const std::string replayed = ReplayOnce(spec);
  const std::string served = ServeOnce(spec, /*threads=*/1);
  EXPECT_FALSE(replayed.empty());
  EXPECT_EQ(replayed, served);
}

}  // namespace
}  // namespace pathix
