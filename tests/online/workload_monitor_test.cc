// WorkloadMonitor: exponentially-decayed load estimation.

#include <gtest/gtest.h>

#include "online/workload_monitor.h"

namespace pathix {
namespace {

constexpr ClassId kA = 0;
constexpr ClassId kB = 1;

TEST(WorkloadMonitorTest, EmptyMonitorEstimatesZero) {
  WorkloadMonitor monitor;
  EXPECT_EQ(monitor.ops_observed(), 0u);
  EXPECT_DOUBLE_EQ(monitor.DecayedTotal(), 0.0);
  const LoadDistribution load = monitor.EstimatedLoad();
  EXPECT_DOUBLE_EQ(load.Get(kA).query, 0.0);
}

TEST(WorkloadMonitorTest, StationaryStreamConvergesToMixProportions) {
  WorkloadMonitor monitor(/*half_life_ops=*/64);
  // Repeating block of 10 ops: 6 A-queries, 3 B-inserts, 1 B-delete.
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 6; ++i) monitor.Observe(DbOpKind::kQuery, kA);
    for (int i = 0; i < 3; ++i) monitor.Observe(DbOpKind::kInsert, kB);
    monitor.Observe(DbOpKind::kDelete, kB);
  }
  const LoadDistribution load = monitor.EstimatedLoad();
  EXPECT_NEAR(load.Get(kA).query, 0.6, 0.05);
  EXPECT_NEAR(load.Get(kB).insert, 0.3, 0.05);
  EXPECT_NEAR(load.Get(kB).del, 0.1, 0.05);
  // Normalized: everything sums to 1.
  const OpLoad a = load.Get(kA), b = load.Get(kB);
  EXPECT_NEAR(a.query + a.insert + a.del + b.query + b.insert + b.del, 1.0,
              1e-9);
}

TEST(WorkloadMonitorTest, PhaseShiftForgetsOldTrafficWithinHalfLives) {
  WorkloadMonitor monitor(/*half_life_ops=*/32);
  for (int i = 0; i < 1000; ++i) monitor.Observe(DbOpKind::kQuery, kA);
  // Shift: pure B-inserts. After 10 half-lives the A weight is ~2^-10.
  for (int i = 0; i < 320; ++i) monitor.Observe(DbOpKind::kInsert, kB);
  const LoadDistribution load = monitor.EstimatedLoad();
  EXPECT_GT(load.Get(kB).insert, 0.97);
  EXPECT_LT(load.Get(kA).query, 0.03);
}

TEST(WorkloadMonitorTest, NoDecayCountsPlainly) {
  WorkloadMonitor monitor(/*half_life_ops=*/0);  // decay disabled
  for (int i = 0; i < 30; ++i) monitor.Observe(DbOpKind::kQuery, kA);
  for (int i = 0; i < 10; ++i) monitor.Observe(DbOpKind::kInsert, kB);
  EXPECT_DOUBLE_EQ(monitor.DecayedTotal(), 40.0);
  const LoadDistribution load = monitor.EstimatedLoad();
  EXPECT_DOUBLE_EQ(load.Get(kA).query, 0.75);
  EXPECT_DOUBLE_EQ(load.Get(kB).insert, 0.25);
}

TEST(WorkloadMonitorTest, ResetClearsState) {
  WorkloadMonitor monitor;
  monitor.Observe(DbOpKind::kQuery, kA);
  monitor.Reset();
  EXPECT_EQ(monitor.ops_observed(), 0u);
  EXPECT_DOUBLE_EQ(monitor.DecayedTotal(), 0.0);
  EXPECT_DOUBLE_EQ(monitor.MeasuredNaiveQueryPagesPerOp(), 0.0);
}

TEST(WorkloadMonitorTest, PricesNaiveScanPagesPerOperation) {
  WorkloadMonitor monitor(/*half_life_ops=*/0);  // decay disabled
  // Two naive queries of 100 pages each on "p", one indexed query (ignored
  // for pricing) and one insert: 200 pages over 4 operations.
  monitor.Observe({DbOpKind::kQuery, kA, "p", true, AccessStats{60, 40, 0}});
  monitor.Observe({DbOpKind::kQuery, kA, "p", true, AccessStats{100, 0, 0}});
  monitor.Observe({DbOpKind::kQuery, kA, "q", false, AccessStats{5, 0, 0}});
  monitor.Observe({DbOpKind::kInsert, kB, {}, false, AccessStats{0, 1, 0}});
  EXPECT_DOUBLE_EQ(monitor.MeasuredNaiveQueryPagesPerOp("p"), 50.0);
  EXPECT_DOUBLE_EQ(monitor.MeasuredNaiveQueryPagesPerOp("q"), 0.0);
  EXPECT_DOUBLE_EQ(monitor.MeasuredNaiveQueryPagesPerOp(), 50.0);
}

TEST(WorkloadMonitorTest, NaivePagesDecayLikeTheCounts) {
  WorkloadMonitor monitor(/*half_life_ops=*/2);
  monitor.Observe({DbOpKind::kQuery, kA, "p", true, AccessStats{64, 0, 0}});
  const double fresh = monitor.MeasuredNaiveQueryPagesPerOp("p");
  EXPECT_GT(fresh, 0.0);
  // Cheap indexed traffic dilutes the estimate: the decayed page sum fades
  // at the same rate as the op weights, so the per-op price falls.
  for (int i = 0; i < 8; ++i) {
    monitor.Observe({DbOpKind::kQuery, kA, "p", false, AccessStats{1, 0, 0}});
  }
  EXPECT_LT(monitor.MeasuredNaiveQueryPagesPerOp("p"), fresh);
}

}  // namespace
}  // namespace pathix
