#include "schema/path.h"

#include <gtest/gtest.h>

#include "datagen/paper_schema.h"

namespace pathix {
namespace {

class PathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MakePaperSchema(&per_, &veh_, &bus_, &truck_, &comp_, &div_);
  }
  Schema schema_;
  ClassId per_, veh_, bus_, truck_, comp_, div_;
};

TEST_F(PathTest, CreatesPexa) {
  Result<Path> p =
      Path::Create(schema_, per_, {"owns", "man", "divs", "name"});
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  const Path& path = p.value();
  EXPECT_EQ(path.length(), 4);
  EXPECT_EQ(path.class_at(1), per_);
  EXPECT_EQ(path.class_at(2), veh_);
  EXPECT_EQ(path.class_at(3), comp_);
  EXPECT_EQ(path.class_at(4), div_);
  EXPECT_EQ(path.attribute_at(1).name, "owns");
  EXPECT_EQ(path.attribute_at(4).name, "name");
  EXPECT_FALSE(path.ends_in_reference());
  EXPECT_EQ(path.ToString(schema_), "Person.owns.man.divs.name");
}

TEST_F(PathTest, ScopeIncludesSubclasses) {
  // Example 2.1 of the paper: scope(Pe) = {Per, Veh, Bus, Truck, Comp}.
  const Path path =
      Path::Create(schema_, per_, {"owns", "man", "name"}).value();
  EXPECT_EQ(path.length(), 3);
  const std::vector<ClassId> scope = path.Scope(schema_);
  EXPECT_EQ(scope, (std::vector<ClassId>{per_, veh_, bus_, truck_, comp_}));
}

TEST_F(PathTest, UnknownAttributeRejected) {
  Result<Path> p = Path::Create(schema_, per_, {"wheels"});
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PathTest, AtomicAttributeCannotBeNavigated) {
  Result<Path> p = Path::Create(schema_, per_, {"name", "man"});
  EXPECT_FALSE(p.ok());
}

TEST_F(PathTest, EmptyAttributeListRejected) {
  EXPECT_FALSE(Path::Create(schema_, per_, {}).ok());
}

TEST_F(PathTest, InvalidStartingClassRejected) {
  EXPECT_FALSE(Path::Create(schema_, 99, {"owns"}).ok());
}

TEST_F(PathTest, SubpathEndingInReferenceIsValid) {
  Result<Path> p = Path::Create(schema_, per_, {"owns", "man"});
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value().ends_in_reference());
}

TEST_F(PathTest, SubpathBetweenExtractsRange) {
  const Path path =
      Path::Create(schema_, per_, {"owns", "man", "divs", "name"}).value();
  const Path sub = path.SubpathBetween(2, 3);
  EXPECT_EQ(sub.length(), 2);
  EXPECT_EQ(sub.class_at(1), veh_);
  EXPECT_EQ(sub.attribute_at(2).name, "divs");
  EXPECT_EQ(sub.ToString(schema_), "Vehicle.man.divs");
}

TEST_F(PathTest, PathLengthOne) {
  const Path p = Path::Create(schema_, div_, {"name"}).value();
  EXPECT_EQ(p.length(), 1);
  EXPECT_EQ(p.Scope(schema_), std::vector<ClassId>{div_});
}

TEST_F(PathTest, ClassRepetitionRejected) {
  // Build a cyclic aggregation A -> B -> A; Def. 2.1 forbids revisiting A.
  Schema s;
  const ClassId a = s.AddClass("A").value();
  const ClassId b = s.AddClass("B").value();
  ASSERT_TRUE(s.AddReferenceAttribute(a, "to_b", b).ok());
  ASSERT_TRUE(s.AddReferenceAttribute(b, "to_a", a).ok());
  ASSERT_TRUE(s.AddAtomicAttribute(a, "x", AtomicType::kInt).ok());
  EXPECT_TRUE(Path::Create(s, a, {"to_b", "to_a"}).ok());  // ends at A: ok
  Result<Path> cyc = Path::Create(s, a, {"to_b", "to_a", "to_b"});
  EXPECT_FALSE(cyc.ok());  // would use A twice as a navigated class
}

}  // namespace
}  // namespace pathix
