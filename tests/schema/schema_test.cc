#include "schema/schema.h"

#include <gtest/gtest.h>

#include "datagen/paper_schema.h"

namespace pathix {
namespace {

TEST(SchemaTest, AddAndFindClasses) {
  Schema s;
  const ClassId a = s.AddClass("A").value();
  const ClassId b = s.AddClass("B").value();
  EXPECT_EQ(s.num_classes(), 2);
  EXPECT_EQ(s.FindClass("A"), a);
  EXPECT_EQ(s.FindClass("B"), b);
  EXPECT_EQ(s.FindClass("C"), kInvalidClass);
}

TEST(SchemaTest, DuplicateClassNameRejected) {
  Schema s;
  ASSERT_TRUE(s.AddClass("A").ok());
  Result<ClassId> dup = s.AddClass("A");
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, EmptyClassNameRejected) {
  Schema s;
  EXPECT_FALSE(s.AddClass("").ok());
}

TEST(SchemaTest, InvalidSuperclassRejected) {
  Schema s;
  EXPECT_FALSE(s.AddClass("A", 42).ok());
}

TEST(SchemaTest, SubclassLinksBothWays) {
  Schema s;
  const ClassId veh = s.AddClass("Vehicle").value();
  const ClassId bus = s.AddClass("Bus", veh).value();
  EXPECT_EQ(s.GetClass(bus).superclass(), veh);
  ASSERT_EQ(s.GetClass(veh).subclasses().size(), 1u);
  EXPECT_EQ(s.GetClass(veh).subclasses()[0], bus);
}

TEST(SchemaTest, AttributeResolutionSearchesSuperclasses) {
  Schema s;
  const ClassId veh = s.AddClass("Vehicle").value();
  const ClassId bus = s.AddClass("Bus", veh).value();
  ASSERT_TRUE(s.AddAtomicAttribute(veh, "color", AtomicType::kString).ok());
  const Attribute* inherited = s.ResolveAttribute(bus, "color");
  ASSERT_NE(inherited, nullptr);
  EXPECT_EQ(inherited->name, "color");
  EXPECT_EQ(s.ResolveAttribute(bus, "missing"), nullptr);
}

TEST(SchemaTest, DuplicateAttributeRejected) {
  Schema s;
  const ClassId a = s.AddClass("A").value();
  ASSERT_TRUE(s.AddAtomicAttribute(a, "x", AtomicType::kInt).ok());
  EXPECT_FALSE(s.AddAtomicAttribute(a, "x", AtomicType::kInt).ok());
}

TEST(SchemaTest, ReferenceAttributeNeedsValidDomain) {
  Schema s;
  const ClassId a = s.AddClass("A").value();
  EXPECT_FALSE(s.AddReferenceAttribute(a, "ref", 99).ok());
}

TEST(SchemaTest, HierarchyOfReturnsRootFirst) {
  Schema s;
  const ClassId veh = s.AddClass("Vehicle").value();
  const ClassId bus = s.AddClass("Bus", veh).value();
  const ClassId truck = s.AddClass("Truck", veh).value();
  const ClassId minibus = s.AddClass("Minibus", bus).value();
  const std::vector<ClassId> h = s.HierarchyOf(veh);
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0], veh);
  EXPECT_EQ(h[1], bus);
  EXPECT_EQ(h[2], truck);
  EXPECT_EQ(h[3], minibus);
}

TEST(SchemaTest, IsSameOrSubclassOf) {
  Schema s;
  const ClassId veh = s.AddClass("Vehicle").value();
  const ClassId bus = s.AddClass("Bus", veh).value();
  const ClassId comp = s.AddClass("Company").value();
  EXPECT_TRUE(s.IsSameOrSubclassOf(bus, veh));
  EXPECT_TRUE(s.IsSameOrSubclassOf(veh, veh));
  EXPECT_FALSE(s.IsSameOrSubclassOf(veh, bus));
  EXPECT_FALSE(s.IsSameOrSubclassOf(comp, veh));
}

TEST(SchemaTest, PaperSchemaValidates) {
  ClassId per, veh, bus, truck, comp, divi;
  Schema s = MakePaperSchema(&per, &veh, &bus, &truck, &comp, &divi);
  EXPECT_TRUE(s.Validate().ok());
  EXPECT_EQ(s.GetClass(bus).superclass(), veh);
  EXPECT_EQ(s.GetClass(truck).superclass(), veh);
  // Inheritance: Bus sees Vehicle's reference attribute `man`.
  const Attribute* man = s.ResolveAttribute(bus, "man");
  ASSERT_NE(man, nullptr);
  EXPECT_EQ(man->domain, comp);
}

}  // namespace
}  // namespace pathix
