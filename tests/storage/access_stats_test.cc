// AccessStats operator algebra edge cases and ScopedAccessProbe nesting —
// the probe frames are the most annotation-sensitive code in the locking
// layer, so their protocol is pinned here in detail.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "storage/pager.h"

namespace pathix {
namespace {

TEST(AccessStatsAlgebraTest, DifferenceSaturatesInsteadOfWrapping) {
  const AccessStats small{1, 2, 0};
  const AccessStats big{5, 3, 7};
  // A counter that would go negative clamps to zero — deltas between
  // snapshots of one monotone counter set are exact, but subtracting
  // tallies from unrelated frames must not wrap to 2^64-ish garbage.
  EXPECT_EQ(small - big, (AccessStats{0, 0, 0}));
  EXPECT_EQ(big - small, (AccessStats{4, 1, 7}));
  // Saturation is per field, not all-or-nothing.
  EXPECT_EQ((AccessStats{9, 0, 1}) - (AccessStats{3, 4, 0}),
            (AccessStats{6, 0, 1}));
}

TEST(AccessStatsAlgebraTest, DifferenceThenAddDoesNotRoundTripWhenClamped) {
  const AccessStats a{1, 1, 1};
  const AccessStats b{2, 0, 0};
  AccessStats diff = a - b;  // reads clamped: information is lost
  diff += b;
  EXPECT_NE(diff, a);
  EXPECT_EQ(diff, (AccessStats{2, 1, 1}));
}

TEST(AccessStatsAlgebraTest, EqualityComparesAllThreeFields) {
  EXPECT_EQ((AccessStats{1, 2, 3}), (AccessStats{1, 2, 3}));
  EXPECT_NE((AccessStats{1, 2, 3}), (AccessStats{1, 2, 4}));
  EXPECT_NE((AccessStats{1, 2, 3}), (AccessStats{0, 2, 3}));
  // Default-constructed == explicitly zeroed.
  EXPECT_EQ(AccessStats{}, (AccessStats{0, 0, 0}));
}

TEST(AccessStatsAlgebraTest, PartiallyFilledTallyMapsCompareStructurally) {
  // Per-label tally maps are std::map: an *absent* label and a label with
  // an explicit all-zero entry are different maps, even though every
  // per-label count "reads" as zero. Consumers diffing tallies across runs
  // must normalize (drop zero entries) before comparing — pinned here so
  // the footgun is documented behavior, not a surprise.
  std::map<std::string, AccessStats> absent;
  std::map<std::string, AccessStats> zeroed{{"people", AccessStats{}}};
  EXPECT_TRUE(absent != zeroed);
  EXPECT_FALSE(absent == zeroed);

  // Same keys, same stats: equal regardless of insertion order.
  std::map<std::string, AccessStats> x{{"a", {1, 0, 0}}, {"b", {0, 2, 0}}};
  std::map<std::string, AccessStats> y{{"b", {0, 2, 0}}, {"a", {1, 0, 0}}};
  EXPECT_TRUE(x == y);
  // One differing field in one entry breaks equality.
  y["b"].buffer_hits = 1;
  EXPECT_TRUE(x != y);
}

TEST(ScopedAccessProbeNestingTest, CountingInsideExcludedObservesNothing) {
  Pager pager(4096);
  ScopedAccessProbe build(&pager, PageOpKind::kBuild, {}, /*exclude=*/true);
  {
    // A counting frame inside an excluded one: the main stats are frozen,
    // so the inner frame's delta is empty while the traffic still lands in
    // the excluded frame's measurement.
    ScopedAccessProbe query(&pager, PageOpKind::kQuery, "people");
    pager.NoteReads(5);
    EXPECT_EQ(query.Delta(), AccessStats{});
  }
  EXPECT_EQ(build.Delta().reads, 5u);
  EXPECT_EQ(pager.tally(PageOpKind::kQuery), AccessStats{});
  EXPECT_EQ(pager.label_tallies().count("people"), 1u);  // entry, all zero
  EXPECT_EQ(pager.label_tallies().at("people"), AccessStats{});
}

TEST(ScopedAccessProbeNestingTest, ThreeDeepExcludedUnwindKeepsEachDelta) {
  Pager pager(4096);
  {
    ScopedAccessProbe a(&pager, PageOpKind::kBuild, {}, /*exclude=*/true);
    pager.NoteWrites(1);
    {
      ScopedAccessProbe b(&pager, PageOpKind::kBuild, {}, /*exclude=*/true);
      pager.NoteWrites(2);
      {
        ScopedAccessProbe c(&pager, PageOpKind::kOther, {}, /*exclude=*/true);
        pager.NoteWrites(4);
        EXPECT_EQ(c.Delta().writes, 4u);
      }
      pager.NoteWrites(8);
      EXPECT_EQ(b.Delta().writes, 10u);
    }
    pager.NoteWrites(16);
    EXPECT_EQ(a.Delta().writes, 17u);
  }
  EXPECT_EQ(pager.stats(), AccessStats{});
  // Every frame folded its own delta: kBuild got a's and b's, kOther c's.
  EXPECT_EQ(pager.tally(PageOpKind::kBuild).writes, 27u);
  EXPECT_EQ(pager.tally(PageOpKind::kOther).writes, 4u);
}

TEST(ScopedAccessProbeNestingTest, LabeledFramesAccumulateAcrossCloses) {
  Pager pager(4096);
  for (int round = 0; round < 3; ++round) {
    ScopedAccessProbe probe(&pager, PageOpKind::kQuery, "people");
    pager.NoteReads(2);
  }
  {
    ScopedAccessProbe probe(&pager, PageOpKind::kQuery, "fleet");
    pager.NoteReads(1);
  }
  EXPECT_EQ(pager.label_tallies().at("people").reads, 6u);
  EXPECT_EQ(pager.label_tallies().at("fleet").reads, 1u);
  EXPECT_EQ(pager.tally(PageOpKind::kQuery).reads, 7u);
}

TEST(ScopedAccessProbeNestingTest, ExcludedDeltaIsLiveWhileFrameIsOpen) {
  Pager pager(4096);
  ScopedAccessProbe probe(&pager, PageOpKind::kBuild, {}, /*exclude=*/true);
  EXPECT_EQ(probe.Delta(), AccessStats{});
  pager.NoteRead(3);
  EXPECT_EQ(probe.Delta().reads, 1u);
  pager.NoteWrite(3);
  EXPECT_EQ(probe.Delta().writes, 1u);
}

TEST(ScopedAccessProbeNestingTest, AccessProbeSpansScopedFrames) {
  Pager pager(4096);
  AccessProbe outer(pager);
  {
    ScopedAccessProbe counting(&pager, PageOpKind::kInsert);
    pager.NoteWrites(2);
  }
  {
    ScopedAccessProbe excluded(&pager, PageOpKind::kBuild, {}, true);
    pager.NoteWrites(100);  // invisible to the main stats
  }
  EXPECT_EQ(outer.Delta().writes, 2u);
  EXPECT_EQ(outer.Delta().reads, 0u);
}

TEST(AccessProbeDeltaTest, DeltaPreservesBufferHits) {
  // Regression: Delta() used to hand-copy reads and writes and silently
  // drop buffer_hits, so every replayer/serve-driver phase delta lost its
  // hit counts whenever the buffer pool was on.
  Pager pager(4096);
  pager.EnableBuffer(2);
  pager.NoteRead(1);  // miss before the probe opens
  AccessProbe probe(pager);
  pager.NoteRead(1);  // hit
  pager.NoteRead(2);  // miss
  const AccessStats d = probe.Delta();
  EXPECT_EQ(d.buffer_hits, 1u);
  EXPECT_EQ(d.reads, 1u);
  EXPECT_EQ(d.writes, 0u);
  // total() stays reads+writes: hits are the traffic the pool absorbed.
  EXPECT_EQ(d.total(), 1u);
}

TEST(AccessProbeDeltaTest, DeltaSeesWritebacksAsWrites) {
  Pager pager(4096);
  pager.EnableBuffer(1);
  AccessProbe probe(pager);
  pager.NoteWrite(1);  // absorbed: dirties the only frame
  EXPECT_EQ(probe.Delta().writes, 0u);
  pager.NoteRead(2);  // evicts dirty 1 -> one write-back
  const AccessStats d = probe.Delta();
  EXPECT_EQ(d.reads, 1u);
  EXPECT_EQ(d.writes, 1u);
}

}  // namespace
}  // namespace pathix
