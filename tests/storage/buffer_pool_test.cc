// BufferPool unit tests: CLOCK (second-chance) eviction order, pins
// blocking eviction, dirty write-back accounting, and capacity resizes
// that preserve warm state. Small capacities keep the pool single-shard,
// so every eviction sequence here is deterministic.

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"

namespace pathix {
namespace {

// A read touch without pinning; returns the result.
BufferTouchResult Read(BufferPool& pool, PageId page) {
  return pool.TouchRead(page, /*pin=*/false);
}

BufferTouchResult Write(BufferPool& pool, PageId page) {
  return pool.TouchWrite(page, /*pin=*/false);
}

TEST(BufferPoolTest, MissAdmitsAndHitFollows) {
  BufferPool pool;
  EXPECT_EQ(pool.Resize(3), 0u);
  EXPECT_FALSE(Read(pool, 1).hit);
  EXPECT_TRUE(Read(pool, 1).hit);
  EXPECT_TRUE(pool.Resident(1));
  EXPECT_FALSE(pool.Resident(2));
  const BufferPoolStats s = pool.GetStats();
  EXPECT_EQ(s.read_hits, 1u);
  EXPECT_EQ(s.read_misses, 1u);
}

TEST(BufferPoolTest, ClockEvictsInSweepOrderWhenAllReferenced) {
  BufferPool pool;
  pool.Resize(2);
  Read(pool, 1);
  Read(pool, 2);
  // Both frames carry the reference bit; the sweep clears 1 then 2, wraps,
  // and evicts 1 — CLOCK's FIFO degeneration, not LRU (LRU would evict 2
  // if 1 were re-touched; CLOCK gives the re-touch only a second chance).
  Read(pool, 1);  // hit: ref bit already set, changes nothing
  EXPECT_FALSE(Read(pool, 3).hit);
  EXPECT_FALSE(pool.Resident(1));
  EXPECT_TRUE(pool.Resident(2));
  EXPECT_TRUE(pool.Resident(3));
  EXPECT_EQ(pool.GetStats().evictions, 1u);
}

TEST(BufferPoolTest, SecondChanceSavesARecentlyTouchedFrame) {
  BufferPool pool;
  pool.Resize(3);
  Read(pool, 1);
  Read(pool, 2);
  Read(pool, 3);
  // Admit 4: the sweep clears every reference bit and evicts 1 (oldest in
  // sweep order). Hand now sits past slot 0.
  Read(pool, 4);
  EXPECT_FALSE(pool.Resident(1));
  // Re-touch 2: sets its reference bit again.
  EXPECT_TRUE(Read(pool, 2).hit);
  // Admit 5: the hand reaches 2 first, but the fresh reference bit grants
  // it a second chance; 3 (bit still clear) is evicted instead.
  Read(pool, 5);
  EXPECT_TRUE(pool.Resident(2));
  EXPECT_FALSE(pool.Resident(3));
  EXPECT_TRUE(pool.Resident(4));
  EXPECT_TRUE(pool.Resident(5));
}

TEST(BufferPoolTest, PinnedFramesAreNeverEvicted) {
  BufferPool pool;
  pool.Resize(2);
  ASSERT_TRUE(pool.TouchRead(1, /*pin=*/true).admitted);
  Read(pool, 2);
  // Evictions must skip the pinned frame however often the hand passes it.
  Read(pool, 3);
  Read(pool, 4);
  Read(pool, 5);
  EXPECT_TRUE(pool.Resident(1));
  EXPECT_EQ(pool.GetStats().evictions, 3u);  // 2, 3, 4 cycled through
  // Once unpinned the frame is an ordinary eviction candidate again.
  EXPECT_EQ(pool.Unpin(1), 0u);
  Read(pool, 6);
  Read(pool, 7);
  EXPECT_FALSE(pool.Resident(1));
}

TEST(BufferPoolTest, AllFramesPinnedBypassesInsteadOfBlocking) {
  BufferPool pool;
  pool.Resize(2);
  ASSERT_TRUE(pool.TouchRead(1, /*pin=*/true).admitted);
  ASSERT_TRUE(pool.TouchRead(2, /*pin=*/true).admitted);
  const BufferTouchResult r = Read(pool, 3);
  EXPECT_FALSE(r.hit);
  EXPECT_FALSE(r.admitted);  // caller charges a real read; pool unchanged
  EXPECT_FALSE(pool.Resident(3));
  EXPECT_EQ(pool.GetStats().pin_bypasses, 1u);
  pool.Unpin(1);
  pool.Unpin(2);
}

TEST(BufferPoolTest, WritesAreWriteBack) {
  BufferPool pool;
  pool.Resize(2);
  const BufferTouchResult w = Write(pool, 1);
  EXPECT_TRUE(w.admitted);
  EXPECT_EQ(w.writebacks, 0u);  // dirtied, not written through
  EXPECT_TRUE(pool.Dirty(1));
  // A read of the dirty frame is an ordinary hit.
  EXPECT_TRUE(Read(pool, 1).hit);
  // Evicting the dirty frame surfaces the deferred write.
  Read(pool, 2);
  BufferTouchResult evicting = Read(pool, 3);  // sweeps, evicts 1
  EXPECT_EQ(evicting.writebacks, 1u);
  const BufferPoolStats s = pool.GetStats();
  EXPECT_EQ(s.writebacks, 1u);
  EXPECT_EQ(s.evictions, 1u);
}

TEST(BufferPoolTest, CleanEvictionCostsNoWriteback) {
  BufferPool pool;
  pool.Resize(1);
  Read(pool, 1);
  EXPECT_EQ(Read(pool, 2).writebacks, 0u);
  EXPECT_EQ(pool.GetStats().writebacks, 0u);
  EXPECT_EQ(pool.GetStats().evictions, 1u);
}

TEST(BufferPoolTest, FlushAllCleansButKeepsFramesResident) {
  BufferPool pool;
  pool.Resize(4);
  Write(pool, 1);
  Write(pool, 2);
  Read(pool, 3);
  EXPECT_EQ(pool.FlushAll(), 2u);
  EXPECT_TRUE(pool.Resident(1));
  EXPECT_FALSE(pool.Dirty(1));
  EXPECT_EQ(pool.FlushAll(), 0u);  // already clean
  EXPECT_EQ(pool.GetStats().writebacks, 2u);
}

TEST(BufferPoolTest, SameCapacityResizeIsANoOp) {
  BufferPool pool;
  pool.Resize(3);
  Read(pool, 1);
  Write(pool, 2);
  EXPECT_EQ(pool.Resize(3), 0u);
  EXPECT_TRUE(pool.Resident(1));
  EXPECT_TRUE(pool.Resident(2));
  EXPECT_TRUE(pool.Dirty(2));  // warm *and* dirty state untouched
  EXPECT_EQ(pool.GetStats().evictions, 0u);
}

TEST(BufferPoolTest, GrowKeepsEveryResidentFrame) {
  BufferPool pool;
  pool.Resize(2);
  Read(pool, 1);
  Write(pool, 2);
  EXPECT_EQ(pool.Resize(8), 0u);
  EXPECT_TRUE(pool.Resident(1));
  EXPECT_TRUE(pool.Resident(2));
  EXPECT_TRUE(pool.Dirty(2));
  // And the extra room is usable without evicting the old frames.
  Read(pool, 3);
  Read(pool, 4);
  EXPECT_TRUE(pool.Resident(1));
  EXPECT_EQ(pool.GetStats().evictions, 0u);
}

TEST(BufferPoolTest, ShrinkEvictsFromTheColdEnd) {
  BufferPool pool;
  pool.Resize(4);
  Read(pool, 1);
  Read(pool, 2);
  Read(pool, 3);
  Read(pool, 4);
  // No sweep has run, so victim order is admission order: 1 is coldest.
  EXPECT_EQ(pool.Resize(3), 0u);
  EXPECT_FALSE(pool.Resident(1));
  EXPECT_TRUE(pool.Resident(2));
  EXPECT_TRUE(pool.Resident(3));
  EXPECT_TRUE(pool.Resident(4));
}

TEST(BufferPoolTest, ShrinkPrefersReferenceClearFramesAsColder) {
  BufferPool pool;
  pool.Resize(3);
  Read(pool, 1);
  Read(pool, 2);
  Read(pool, 3);
  // Admit 4: sweep clears all bits, evicts 1; 4 admits with its bit set.
  Read(pool, 4);
  // 2 and 3 now have clear bits, 4 a set bit: shrinking to one frame must
  // keep 4 (the only warm frame).
  EXPECT_EQ(pool.Resize(1), 0u);
  EXPECT_TRUE(pool.Resident(4));
  EXPECT_FALSE(pool.Resident(2));
  EXPECT_FALSE(pool.Resident(3));
}

TEST(BufferPoolTest, ShrinkWritesBackDirtyVictims) {
  BufferPool pool;
  pool.Resize(3);
  Write(pool, 1);
  Write(pool, 2);
  Read(pool, 3);
  // Shrink to 1: victims are 1 and 2 (cold end), both dirty.
  EXPECT_EQ(pool.Resize(1), 2u);
  EXPECT_EQ(pool.GetStats().writebacks, 2u);
  EXPECT_TRUE(pool.Resident(3));
}

TEST(BufferPoolTest, DisableFlushesEverything) {
  BufferPool pool;
  pool.Resize(3);
  Write(pool, 1);
  Read(pool, 2);
  EXPECT_EQ(pool.Resize(0), 1u);  // one dirty page written back
  EXPECT_FALSE(pool.Resident(1));
  EXPECT_FALSE(pool.Resident(2));
  EXPECT_EQ(pool.ResidentPages(), 0u);
  // With the pool off every touch passes through.
  const BufferTouchResult r = Read(pool, 1);
  EXPECT_FALSE(r.hit);
  EXPECT_FALSE(r.admitted);
}

TEST(BufferPoolTest, ShrinkKeepsPinnedOverflowUntilUnpin) {
  BufferPool pool;
  pool.Resize(2);
  ASSERT_TRUE(pool.TouchWrite(1, /*pin=*/true).admitted);
  Read(pool, 2);
  // Shrink below the pinned frame: the unpinned frame goes, the pinned one
  // is kept above capacity.
  EXPECT_EQ(pool.Resize(0), 0u);
  EXPECT_TRUE(pool.Resident(1));
  EXPECT_FALSE(pool.Resident(2));
  // The last unpin retires the overflow frame — and owes its write-back.
  EXPECT_EQ(pool.Unpin(1), 1u);
  EXPECT_FALSE(pool.Resident(1));
  EXPECT_EQ(pool.ResidentPages(), 0u);
}

TEST(BufferPoolTest, ReenableAfterDisableStartsCold) {
  BufferPool pool;
  pool.Resize(2);
  Read(pool, 1);
  pool.Resize(0);
  pool.Resize(2);
  EXPECT_FALSE(Read(pool, 1).hit);  // cold again: the flush dropped it
}

TEST(BufferPoolTest, LargePoolsShardButStillAccountExactly) {
  BufferPool pool;
  pool.Resize(512);  // sharded fan-out
  const int kPages = 1000;
  for (int p = 0; p < kPages; ++p) Read(pool, static_cast<PageId>(p));
  for (int p = 0; p < kPages; ++p) Read(pool, static_cast<PageId>(p));
  const BufferPoolStats s = pool.GetStats();
  EXPECT_EQ(s.read_hits + s.read_misses, 2u * kPages);
  EXPECT_EQ(pool.ResidentPages(), 512u);
  EXPECT_EQ(s.evictions, s.read_misses - 512u);  // every miss past capacity
  // Growing a sharded pool re-stripes without losing frames.
  const std::size_t resident_before = pool.ResidentPages();
  EXPECT_EQ(pool.Resize(1024), 0u);
  EXPECT_EQ(pool.ResidentPages(), resident_before);
}

}  // namespace
}  // namespace pathix
