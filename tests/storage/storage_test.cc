#include <gtest/gtest.h>

#include "storage/object_store.h"

namespace pathix {
namespace {

TEST(PagerTest, CountsReadsAndWrites) {
  Pager pager(4096);
  const PageId a = pager.Allocate();
  const PageId b = pager.Allocate();
  EXPECT_NE(a, b);
  pager.NoteRead(a);
  pager.NoteRead(b);
  pager.NoteWrite(a);
  EXPECT_EQ(pager.stats().reads, 2u);
  EXPECT_EQ(pager.stats().writes, 1u);
  EXPECT_EQ(pager.stats().total(), 3u);
  pager.ResetStats();
  EXPECT_EQ(pager.stats().total(), 0u);
}

TEST(PagerTest, ProbeCapturesDelta) {
  Pager pager(4096);
  pager.NoteReads(5);
  AccessProbe probe(pager);
  pager.NoteReads(3);
  pager.NoteWrite(0);
  EXPECT_EQ(probe.Delta().reads, 3u);
  EXPECT_EQ(probe.Delta().writes, 1u);
}

TEST(PagerBufferTest, RepeatedReadsHitTheBuffer) {
  Pager pager(4096);
  pager.EnableBuffer(4);
  pager.NoteRead(1);
  pager.NoteRead(1);
  pager.NoteRead(1);
  EXPECT_EQ(pager.stats().reads, 1u);
  EXPECT_EQ(pager.stats().buffer_hits, 2u);
}

TEST(PagerBufferTest, ClockEvictionChargesReEnteringPages) {
  Pager pager(4096);
  pager.EnableBuffer(2);
  pager.NoteRead(1);  // miss, admits {1}
  pager.NoteRead(2);  // miss, admits {1,2}
  pager.NoteRead(1);  // hit (reference bit set)
  // CLOCK sweep: both frames spend their second chance, 1 (first in sweep
  // order) is evicted — re-reading it later would be a real read again.
  pager.NoteRead(3);  // miss, evicts 1 -> {3,2}
  pager.NoteRead(2);  // hit: 2 survived the sweep
  EXPECT_EQ(pager.stats().reads, 3u);
  EXPECT_EQ(pager.stats().buffer_hits, 2u);
  EXPECT_FALSE(pager.buffer_pool().Resident(1));
  pager.NoteRead(1);  // the evicted page charges a real read
  EXPECT_EQ(pager.stats().reads, 4u);
}

TEST(PagerBufferTest, WritesAreWriteBackAndAdmit) {
  Pager pager(4096);
  pager.EnableBuffer(4);
  pager.NoteWrite(7);
  pager.NoteWrite(7);
  // Write-back: both writes are absorbed into the dirty frame.
  EXPECT_EQ(pager.stats().writes, 0u);
  EXPECT_TRUE(pager.buffer_pool().Dirty(7));
  pager.NoteRead(7);  // admitted by the writes
  EXPECT_EQ(pager.stats().reads, 0u);
  EXPECT_EQ(pager.stats().buffer_hits, 1u);
  // Disabling flushes the pool: the dirty page surfaces as one real write,
  // however many times it was dirtied.
  pager.EnableBuffer(0);
  EXPECT_EQ(pager.stats().writes, 1u);
}

TEST(PagerBufferTest, ResizePreservesWarmState) {
  Pager pager(4096);
  pager.EnableBuffer(4);
  pager.NoteRead(1);
  pager.NoteRead(2);
  // Re-enabling at the same capacity is a no-op: the warm frames survive.
  pager.EnableBuffer(4);
  pager.NoteRead(1);
  EXPECT_EQ(pager.stats().buffer_hits, 1u);
  // Growing keeps every resident frame.
  pager.EnableBuffer(8);
  pager.NoteRead(2);
  EXPECT_EQ(pager.stats().buffer_hits, 2u);
  // Shrinking evicts from the cold end: in CLOCK victim order (no sweep
  // has run) 1 and 2 sit in front of the hand, so they go first and the
  // youngest admissions survive.
  pager.NoteRead(3);
  pager.NoteRead(4);
  pager.EnableBuffer(2);
  EXPECT_FALSE(pager.buffer_pool().Resident(1));
  EXPECT_FALSE(pager.buffer_pool().Resident(2));
  EXPECT_TRUE(pager.buffer_pool().Resident(3));
  EXPECT_TRUE(pager.buffer_pool().Resident(4));
  EXPECT_EQ(pager.stats().reads, 4u);  // resizes charged nothing new
}

TEST(PagerBufferTest, DisablingRestoresColdCounting) {
  Pager pager(4096);
  pager.EnableBuffer(4);
  pager.NoteRead(1);
  pager.NoteRead(1);
  pager.EnableBuffer(0);
  pager.NoteRead(1);
  pager.NoteRead(1);
  EXPECT_EQ(pager.stats().reads, 3u);  // 1 cold + 2 after disable
}

TEST(PagerBufferTest, BulkReadsBypassTheBuffer) {
  Pager pager(4096);
  pager.EnableBuffer(4);
  pager.NoteReads(5);
  pager.NoteReads(5);
  EXPECT_EQ(pager.stats().reads, 10u);
  EXPECT_EQ(pager.stats().buffer_hits, 0u);
}

TEST(ScopedAccessProbeTest, FoldsKindAndLabelTallies) {
  Pager pager(4096);
  {
    ScopedAccessProbe probe(&pager, PageOpKind::kQuery, "people");
    pager.NoteReads(3);
    pager.NoteWrite(0);
    EXPECT_EQ(probe.Delta().reads, 3u);
  }
  {
    ScopedAccessProbe probe(&pager, PageOpKind::kInsert);
    pager.NoteWrite(1);
  }
  EXPECT_EQ(pager.tally(PageOpKind::kQuery).reads, 3u);
  EXPECT_EQ(pager.tally(PageOpKind::kQuery).writes, 1u);
  EXPECT_EQ(pager.tally(PageOpKind::kInsert).writes, 1u);
  ASSERT_EQ(pager.label_tallies().count("people"), 1u);
  EXPECT_EQ(pager.label_tallies().at("people").reads, 3u);
  // Main stats saw everything: the tallies decompose, they do not replace.
  EXPECT_EQ(pager.stats().reads, 3u);
  EXPECT_EQ(pager.stats().writes, 2u);
  pager.ResetTallies();
  EXPECT_EQ(pager.tally(PageOpKind::kQuery).total(), 0u);
  EXPECT_TRUE(pager.label_tallies().empty());
  EXPECT_EQ(pager.stats().reads, 3u);  // tallies reset, stats untouched
}

TEST(ScopedAccessProbeTest, ExcludedScopeMeasuresWithoutCharging) {
  Pager pager(4096);
  pager.NoteReads(2);
  {
    ScopedAccessProbe probe(&pager, PageOpKind::kBuild, {}, /*exclude=*/true);
    pager.NoteReads(7);
    pager.NoteWrites(5);
    pager.NoteRead(9);
    pager.NoteWrite(9);
    EXPECT_EQ(probe.Delta().reads, 8u);
    EXPECT_EQ(probe.Delta().writes, 6u);
  }
  // Main stats never moved; the kBuild tally holds the measurement.
  EXPECT_EQ(pager.stats().reads, 2u);
  EXPECT_EQ(pager.stats().writes, 0u);
  EXPECT_EQ(pager.tally(PageOpKind::kBuild).reads, 8u);
  EXPECT_EQ(pager.tally(PageOpKind::kBuild).writes, 6u);
}

TEST(ScopedAccessProbeTest, ExcludedScopeBypassesTheBuffer) {
  Pager pager(4096);
  pager.EnableBuffer(4);
  {
    ScopedAccessProbe probe(&pager, PageOpKind::kBuild, {}, /*exclude=*/true);
    pager.NoteRead(1);
    pager.NoteRead(1);
    EXPECT_EQ(probe.Delta().reads, 2u);  // no hits inside the exclusion
  }
  pager.NoteRead(1);  // page 1 was never admitted: still a cold miss
  EXPECT_EQ(pager.stats().reads, 1u);
  EXPECT_EQ(pager.stats().buffer_hits, 0u);
}

TEST(ScopedAccessProbeTest, ExcludedScopesNestLifo) {
  Pager pager(4096);
  ScopedAccessProbe outer(&pager, PageOpKind::kBuild, {}, /*exclude=*/true);
  pager.NoteReads(1);
  {
    ScopedAccessProbe inner(&pager, PageOpKind::kBuild, {}, /*exclude=*/true);
    pager.NoteReads(4);
    EXPECT_EQ(inner.Delta().reads, 4u);
  }
  pager.NoteReads(1);
  EXPECT_EQ(outer.Delta().reads, 2u);  // the inner frame kept its own counts
  EXPECT_EQ(pager.stats().reads, 0u);
}

TEST(AccessStatsTest, Operators) {
  AccessStats a{5, 3, 1};
  const AccessStats b{2, 1, 0};
  EXPECT_EQ(a - b, (AccessStats{3, 2, 1}));
  a += b;
  EXPECT_EQ(a, (AccessStats{7, 4, 1}));
  EXPECT_NE(a, b);
}

TEST(ValueTest, KindsAndEquality) {
  EXPECT_EQ(Value::Int(5), Value::Int(5));
  EXPECT_FALSE(Value::Int(5) == Value::Int(6));
  EXPECT_FALSE(Value::Int(5) == Value::Str("5"));
  EXPECT_EQ(Value::Ref(9).as_ref(), 9u);
  EXPECT_EQ(Value::Str("hi").as_string(), "hi");
}

TEST(ObjectTest, RefsFilterReferenceValues) {
  Object obj;
  obj.attrs["owns"] = {Value::Ref(3), Value::Ref(4)};
  obj.attrs["name"] = {Value::Str("rossi")};
  EXPECT_EQ(obj.refs("owns"), (std::vector<Oid>{3, 4}));
  EXPECT_TRUE(obj.refs("name").empty());
  EXPECT_TRUE(obj.values("missing").empty());
  EXPECT_GT(obj.bytes(), 20u);
}

class ObjectStoreTest : public ::testing::Test {
 protected:
  Pager pager_{256};  // tiny pages force multi-page segments
  ObjectStore store_{&pager_};

  Oid Put(ClassId cls, std::int64_t tag) {
    Object obj;
    obj.cls = cls;
    obj.attrs["tag"] = {Value::Int(tag)};
    return store_.Insert(std::move(obj));
  }
};

TEST_F(ObjectStoreTest, InsertAssignsDistinctOids) {
  const Oid a = Put(0, 1);
  const Oid b = Put(0, 2);
  EXPECT_NE(a, b);
  EXPECT_NE(a, kInvalidOid);
  EXPECT_EQ(store_.live_objects(), 2u);
}

TEST_F(ObjectStoreTest, GetCountsOneRead) {
  const Oid a = Put(0, 1);
  pager_.ResetStats();
  ASSERT_NE(store_.Get(a), nullptr);
  EXPECT_EQ(pager_.stats().reads, 1u);
  EXPECT_EQ(store_.Get(a)->values("tag")[0].as_int(), 1);
}

TEST_F(ObjectStoreTest, PagesHoldOnlyOneClass) {
  const Oid a = Put(0, 1);
  const Oid b = Put(1, 2);
  EXPECT_NE(store_.PageOf(a), store_.PageOf(b));
}

TEST_F(ObjectStoreTest, SegmentGrowsByPage) {
  // ~30 bytes per object, 256-byte pages -> several objects per page.
  for (int i = 0; i < 50; ++i) Put(0, i);
  EXPECT_GT(store_.SegmentPages(0), 3u);
  EXPECT_EQ(store_.PeekAll(0).size(), 50u);
}

TEST_F(ObjectStoreTest, ScanCountsSegmentPages) {
  for (int i = 0; i < 50; ++i) Put(0, i);
  pager_.ResetStats();
  const std::vector<Oid> oids = store_.Scan(0);
  EXPECT_EQ(oids.size(), 50u);
  EXPECT_EQ(pager_.stats().reads, store_.SegmentPages(0));
}

TEST_F(ObjectStoreTest, DeleteRemovesAndCounts) {
  const Oid a = Put(0, 1);
  pager_.ResetStats();
  ASSERT_TRUE(store_.Delete(a).ok());
  EXPECT_EQ(pager_.stats().reads, 1u);
  EXPECT_EQ(pager_.stats().writes, 1u);
  EXPECT_EQ(store_.Peek(a), nullptr);
  EXPECT_FALSE(store_.Delete(a).ok());  // double delete
  EXPECT_TRUE(store_.PeekAll(0).empty());
}

TEST_F(ObjectStoreTest, PeekIsUncounted) {
  const Oid a = Put(0, 1);
  pager_.ResetStats();
  ASSERT_NE(store_.Peek(a), nullptr);
  EXPECT_EQ(pager_.stats().total(), 0u);
}

}  // namespace
}  // namespace pathix
