#include "workload/load.h"

#include <gtest/gtest.h>

#include "costmodel/path_context.h"
#include "datagen/paper_schema.h"

namespace pathix {
namespace {

TEST(LoadDistributionTest, UnsetClassesCarryZeroLoad) {
  LoadDistribution load;
  const OpLoad l = load.Get(7);
  EXPECT_EQ(l.query, 0);
  EXPECT_EQ(l.insert, 0);
  EXPECT_EQ(l.del, 0);
}

TEST(LoadDistributionTest, SetAndGet) {
  LoadDistribution load;
  load.Set(3, 0.5, 0.25, 0.125);
  const OpLoad l = load.Get(3);
  EXPECT_DOUBLE_EQ(l.query, 0.5);
  EXPECT_DOUBLE_EQ(l.insert, 0.25);
  EXPECT_DOUBLE_EQ(l.del, 0.125);
}

TEST(LoadDistributionTest, TotalsAggregate) {
  LoadDistribution load;
  load.Set(1, 0.3, 0.1, 0.1);
  load.Set(2, 0.2, 0.0, 0.05);
  EXPECT_NEAR(load.TotalQueryLoad(), 0.5, 1e-12);
  EXPECT_NEAR(load.TotalUpdateLoad(), 0.25, 1e-12);
}

TEST(LoadDistributionTest, OverwriteReplaces) {
  LoadDistribution load;
  load.Set(1, 1, 1, 1);
  load.Set(1, 2, 2, 2);
  EXPECT_DOUBLE_EQ(load.Get(1).query, 2);
  EXPECT_DOUBLE_EQ(load.TotalQueryLoad(), 2);
}

TEST(LoadDistributionTest, Figure7TotalsAreAFullMix) {
  const PaperSetup setup = MakeExample51Setup();
  // alpha: .3+.3+.05+0+.1+.2 = 0.95; beta+gamma: .2+.05+.15+.1+.2+.3 = 1.0.
  EXPECT_NEAR(setup.load.TotalQueryLoad(), 0.95, 1e-12);
  EXPECT_NEAR(setup.load.TotalUpdateLoad(), 1.0, 1e-12);
}

// Section 3.2: the derived subpath workload adds upstream query mass to the
// subpath's starting hierarchy. PathContext::PrefixAlpha implements it; the
// cost layer's behaviour is covered in org_models_test. Here: invariants.
TEST(SubpathWorkloadTest, PrefixAlphaIsMonotoneInStartLevel) {
  const PaperSetup setup = MakeExample51Setup();
  const PathContext ctx = PathContext::Build(setup.schema, setup.path,
                                             setup.catalog, setup.load)
                              .value();
  double prev = -1;
  for (int a = 1; a <= ctx.n(); ++a) {
    const double v = ctx.PrefixAlpha(a);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(ctx.PrefixAlpha(1), 0);
}

}  // namespace
}  // namespace pathix
